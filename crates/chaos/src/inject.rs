//! The live injector: a [`FaultPlan`] wired into the simulators'
//! [`FaultInjector`] interposition point.

use crate::plan::{FaultPlan, LinkFault};
use crate::rng::{decision_rng, unit_f64};
use cc_net::fault::{FaultDecision, FaultInjector};
use rand::RngCore;

/// Evaluates a [`FaultPlan`] deterministically.
///
/// Rule precedence: for each message the rules are scanned in plan
/// order; the first rule whose round window and link selector match
/// *and* whose coin (drawn from that rule's own stream) lands under `p`
/// decides the fate. Rules that match but do not fire fall through.
/// Because each `(rule, round, src, dst, index)` tuple has its own
/// stream, a rule's verdict never shifts when other rules, messages, or
/// threads come and go.
#[derive(Clone, Debug)]
pub struct ChaosInjector {
    plan: FaultPlan,
}

impl ChaosInjector {
    /// An injector evaluating `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosInjector { plan }
    }

    /// The plan being evaluated.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultInjector for ChaosInjector {
    fn decision(&self, round: u64, src: usize, dst: usize, index: u32) -> FaultDecision {
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if !rule.rounds.contains(round) || !rule.links.matches(src, dst) {
                continue;
            }
            let mut rng = decision_rng(self.plan.seed, i as u64, round, src, dst, index);
            if unit_f64(rng.next_u64()) >= rule.p {
                continue;
            }
            return match rule.fault {
                LinkFault::Drop => FaultDecision::Drop,
                LinkFault::Duplicate => FaultDecision::Duplicate,
                LinkFault::Corrupt => FaultDecision::Corrupt {
                    bit: rng.next_u64(),
                },
                LinkFault::Defer { rounds } => FaultDecision::Defer { rounds },
            };
        }
        FaultDecision::Deliver
    }

    fn crashed(&self, round: u64, node: usize) -> bool {
        self.plan
            .crashes
            .iter()
            .any(|c| c.node == node && round >= c.at_round)
    }

    fn link_words(&self, round: u64) -> Option<u64> {
        self.plan
            .squeezes
            .iter()
            .filter(|s| s.rounds.contains(round))
            .map(|s| s.link_words)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{LinkSelector, RoundRange};

    #[test]
    fn decisions_are_a_pure_function_of_the_coordinates() {
        let plan = FaultPlan::new(42)
            .drop_messages(RoundRange::all(), LinkSelector::All, 0.5)
            .duplicate_messages(RoundRange::all(), LinkSelector::All, 0.5);
        let a = plan.injector();
        let b = plan.injector();
        for round in 0..8 {
            for src in 0..6 {
                for dst in 0..6 {
                    for index in 0..4 {
                        assert_eq!(
                            a.decision(round, src, dst, index),
                            b.decision(round, src, dst, index),
                            "divergence at {:?}",
                            (round, src, dst, index)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn certain_rules_always_fire_and_impossible_rules_never_do() {
        let always = FaultPlan::new(1)
            .drop_messages(RoundRange::all(), LinkSelector::All, 1.0)
            .injector();
        let never = FaultPlan::new(1)
            .drop_messages(RoundRange::all(), LinkSelector::All, 0.0)
            .injector();
        for index in 0..64 {
            assert_eq!(always.decision(3, 0, 1, index), FaultDecision::Drop);
            assert_eq!(never.decision(3, 0, 1, index), FaultDecision::Deliver);
        }
    }

    #[test]
    fn empirical_rate_tracks_the_probability() {
        let inj = FaultPlan::new(9)
            .drop_messages(RoundRange::all(), LinkSelector::All, 0.25)
            .injector();
        let mut fired = 0u32;
        let trials = 4000;
        for index in 0..trials {
            if inj.decision(0, 0, 1, index) == FaultDecision::Drop {
                fired += 1;
            }
        }
        let rate = f64::from(fired) / f64::from(trials);
        assert!(
            (rate - 0.25).abs() < 0.05,
            "empirical drop rate {rate} far from 0.25"
        );
    }

    #[test]
    fn first_matching_and_firing_rule_wins() {
        // Rule 0 only covers round 0; rule 1 covers everything. In round 0
        // the certain drop shadows the certain duplicate; later rounds
        // fall through to the duplicate.
        let inj = FaultPlan::new(5)
            .drop_messages(RoundRange::only(0), LinkSelector::All, 1.0)
            .duplicate_messages(RoundRange::all(), LinkSelector::All, 1.0)
            .injector();
        assert_eq!(inj.decision(0, 2, 3, 0), FaultDecision::Drop);
        assert_eq!(inj.decision(1, 2, 3, 0), FaultDecision::Duplicate);
    }

    #[test]
    fn selectors_scope_rules_to_their_links() {
        let inj = FaultPlan::new(5)
            .drop_messages(RoundRange::all(), LinkSelector::Link(0, 1), 1.0)
            .injector();
        assert_eq!(inj.decision(0, 0, 1, 0), FaultDecision::Drop);
        assert_eq!(inj.decision(0, 1, 0, 0), FaultDecision::Deliver);
        assert_eq!(inj.decision(0, 0, 2, 0), FaultDecision::Deliver);
    }

    #[test]
    fn corrupt_decisions_carry_a_stream_chosen_bit() {
        let inj = FaultPlan::new(11)
            .corrupt_messages(RoundRange::all(), LinkSelector::All, 1.0)
            .injector();
        let FaultDecision::Corrupt { bit: b1 } = inj.decision(0, 0, 1, 0) else {
            panic!("expected a corruption");
        };
        let FaultDecision::Corrupt { bit: b2 } = inj.decision(0, 0, 1, 0) else {
            panic!("expected a corruption");
        };
        assert_eq!(b1, b2, "replay must choose the same bit");
        let FaultDecision::Corrupt { bit: b3 } = inj.decision(0, 0, 1, 1) else {
            panic!("expected a corruption");
        };
        assert_ne!(b1, b3, "different coordinates should pick different bits");
    }

    #[test]
    fn crashes_are_monotone_in_the_round() {
        let inj = FaultPlan::new(0).crash(4, 3).injector();
        for round in 0..3 {
            assert!(!inj.crashed(round, 4));
        }
        for round in 3..10 {
            assert!(inj.crashed(round, 4), "round {round}: crash must persist");
        }
        assert!(!inj.crashed(9, 5), "only the scheduled node dies");
    }

    #[test]
    fn overlapping_squeezes_take_the_tightest_cap() {
        let inj = FaultPlan::new(0)
            .squeeze(RoundRange::between(1, 4), 6)
            .squeeze(RoundRange::between(3, 5), 2)
            .injector();
        assert_eq!(inj.link_words(0), None);
        assert_eq!(inj.link_words(1), Some(6));
        assert_eq!(inj.link_words(3), Some(2));
        assert_eq!(inj.link_words(5), Some(2));
        assert_eq!(inj.link_words(6), None);
    }
}

//! Cross-engine fault replay: one [`FaultPlan`] must produce identical
//! model-event streams, identical cost totals, and identical final
//! program states on the serial simulator (`CliqueNet` + `run_program`),
//! the serial runtime backend, and the parallel runtime backend.
//!
//! This is the chaos extension of `cc-runtime`'s equivalence suite: the
//! fault layer interposes on all three engines, so the determinism
//! contract — same plan + seed ⇒ same faults — is only worth anything if
//! the engines agree byte-for-byte *including* the injected fault and
//! crash events.

use cc_chaos::{FaultPlan, LinkSelector, RoundRange};
use cc_net::program::{run_program, NodeProgram};
use cc_net::{CliqueNet, Envelope, NetConfig, Outbox};
use cc_runtime::{adapt_all, Runtime};
use cc_trace::{Event, RecordingTracer};

/// A fault-tolerant gossip: each node sends `[counter, me]` to its two
/// ring successors for a fixed number of rounds and folds whatever
/// arrives — whatever its content — into a running digest. No message is
/// interpreted, so drops, duplicates, corruption, deferral, crashes, and
/// squeezes can never panic it; they only change the digest.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Gossip {
    n: usize,
    to_send: u64,
    sent: u64,
    received: u64,
    acc: u64,
}

impl Gossip {
    fn new(rounds: u64) -> Self {
        Gossip {
            n: 0,
            to_send: rounds,
            sent: 0,
            received: 0,
            acc: 0,
        }
    }

    fn absorb(&mut self, inbox: &[Envelope<Vec<u64>>]) {
        for env in inbox {
            self.received += 1;
            self.acc = self
                .acc
                .rotate_left(7)
                .wrapping_add((env.src as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for &w in &env.msg {
                self.acc = self.acc.rotate_left(11) ^ w;
            }
        }
    }

    fn gossip(&mut self, me: usize, out: &mut Outbox<'_, Vec<u64>>) {
        if self.to_send == 0 {
            return;
        }
        for hop in [1, 2] {
            let _ = out.send((me + hop) % self.n, vec![self.sent, me as u64]);
        }
        self.sent += 1;
        self.to_send -= 1;
    }
}

impl NodeProgram for Gossip {
    type Msg = Vec<u64>;

    fn start(&mut self, me: usize, n: usize, out: &mut Outbox<'_, Vec<u64>>) {
        self.n = n;
        self.gossip(me, out);
    }

    fn round(
        &mut self,
        me: usize,
        inbox: &[Envelope<Vec<u64>>],
        out: &mut Outbox<'_, Vec<u64>>,
    ) -> bool {
        self.absorb(inbox);
        self.gossip(me, out);
        self.to_send == 0
    }
}

fn programs(n: usize, rounds: u64) -> Vec<Gossip> {
    (0..n).map(|_| Gossip::new(rounds)).collect()
}

/// `(sent, received, acc)` per node — Gossip's full observable output.
fn outputs(programs: &[Gossip]) -> Vec<(u64, u64, u64)> {
    programs
        .iter()
        .map(|p| (p.sent, p.received, p.acc))
        .collect()
}

/// Runs the plan on all three engines; returns per-engine
/// `(outputs, cost, model events)` and asserts nothing itself.
#[allow(clippy::type_complexity)]
fn run_three_ways(
    n: usize,
    send_rounds: u64,
    max_rounds: u64,
    plan: &FaultPlan,
) -> Vec<(Vec<(u64, u64, u64)>, cc_net::Cost, Vec<Event>)> {
    let cfg = NetConfig::kt1(n);
    let mut results = Vec::new();

    let rec = RecordingTracer::new();
    let mut net: CliqueNet<Vec<u64>> = CliqueNet::new(cfg.clone());
    net.set_tracer(Box::new(rec.clone()));
    net.set_fault_injector(Box::new(plan.injector()));
    let states = run_program(&mut net, programs(n, send_rounds), max_rounds).unwrap();
    results.push((outputs(&states), net.cost(), rec.model_events()));

    let rec = RecordingTracer::new();
    let mut rt = Runtime::serial(cfg.clone());
    rt.set_tracer(Box::new(rec.clone()));
    rt.set_fault_injector(Box::new(plan.injector()));
    let states = rt
        .run(adapt_all(programs(n, send_rounds)), max_rounds)
        .unwrap();
    let inner: Vec<Gossip> = states.into_iter().map(|a| a.0).collect();
    results.push((outputs(&inner), rt.cost(), rec.model_events()));

    let rec = RecordingTracer::new();
    let mut rt = Runtime::parallel_with_threads(cfg, 4);
    rt.set_tracer(Box::new(rec.clone()));
    rt.set_fault_injector(Box::new(plan.injector()));
    let states = rt
        .run(adapt_all(programs(n, send_rounds)), max_rounds)
        .unwrap();
    let inner: Vec<Gossip> = states.into_iter().map(|a| a.0).collect();
    results.push((outputs(&inner), rt.cost(), rec.model_events()));

    results
}

fn assert_three_way_identical(plan: &FaultPlan, n: usize, send_rounds: u64) -> Vec<Event> {
    let runs = run_three_ways(n, send_rounds, 64, plan);
    let (ref_out, ref_cost, ref_events) = &runs[0];
    assert!(!ref_events.is_empty());
    for (name, (out, cost, events)) in ["serial backend", "parallel backend"]
        .iter()
        .zip(&runs[1..])
    {
        assert_eq!(out, ref_out, "{name}: final states diverged");
        assert_eq!(cost, ref_cost, "{name}: cost diverged");
        assert_eq!(events, ref_events, "{name}: model-event streams diverged");
    }
    ref_events.clone()
}

/// The headline test: a plan exercising *all six* fault kinds replays
/// identically on all three engines, and each kind demonstrably occurred.
#[test]
fn all_fault_kinds_replay_identically_on_all_three_engines() {
    let n = 8;
    let plan = FaultPlan::new(0xC1A0)
        .drop_messages(RoundRange::all(), LinkSelector::All, 0.2)
        .duplicate_messages(RoundRange::all(), LinkSelector::All, 0.2)
        .corrupt_messages(RoundRange::all(), LinkSelector::All, 0.2)
        .defer_messages(RoundRange::all(), LinkSelector::All, 0.2, 2)
        .crash(5, 2)
        .squeeze(RoundRange::between(1, 2), 2);
    let events = assert_three_way_identical(&plan, n, 4);

    let mut kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            Event::Fault { kind, .. } => Some(kind.as_str()),
            Event::NodeCrash { .. } => Some("crash"),
            _ => None,
        })
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    for want in ["corrupt", "crash", "defer", "drop", "duplicate", "squeeze"] {
        assert!(
            kinds.contains(&want),
            "plan never produced a {want} fault (saw {kinds:?}) — pick a different seed"
        );
    }
}

#[test]
fn targeted_rules_replay_identically() {
    // Scoped selectors and windows (the asymmetric case: link-level and
    // node-level scoping must key the decision streams identically
    // everywhere).
    let plan = FaultPlan::new(77)
        .drop_messages(RoundRange::between(1, 3), LinkSelector::From(2), 1.0)
        .duplicate_messages(RoundRange::all(), LinkSelector::To(0), 0.5)
        .corrupt_messages(RoundRange::only(2), LinkSelector::Link(3, 4), 1.0);
    assert_three_way_identical(&plan, 6, 5);
}

#[test]
fn a_noop_plan_is_observationally_invisible() {
    // An attached injector that never fires must not perturb the model
    // stream, the cost, or the outputs relative to no injector at all.
    let n = 6;
    let cfg = NetConfig::kt1(n);

    let rec_clean = RecordingTracer::new();
    let mut net: CliqueNet<Vec<u64>> = CliqueNet::new(cfg.clone());
    net.set_tracer(Box::new(rec_clean.clone()));
    let clean = run_program(&mut net, programs(n, 3), 64).unwrap();
    let clean_cost = net.cost();

    let noop = FaultPlan::new(123);
    assert!(noop.is_empty());
    let runs = run_three_ways(n, 3, 64, &noop);
    for (name, (out, cost, events)) in ["simulator", "serial backend", "parallel backend"]
        .iter()
        .zip(&runs)
    {
        assert_eq!(out, &outputs(&clean), "{name}: noop plan changed outputs");
        assert_eq!(cost, &clean_cost, "{name}: noop plan changed cost");
        assert_eq!(
            events,
            &rec_clean.model_events(),
            "{name}: noop plan changed the model stream"
        );
    }
}

#[test]
fn crashed_nodes_freeze_identically() {
    let plan = FaultPlan::new(9).crash(1, 1).crash(4, 3);
    let runs = run_three_ways(6, 4, 64, &plan);
    // Node 1 crashed before its first `round` call: it sent only its
    // start-round messages and received nothing.
    let (out, _, events) = &runs[0];
    assert_eq!(out[1].0, 1, "crashed node's send counter frozen");
    assert_eq!(out[1].1, 0, "crashed node received nothing");
    let crashes: Vec<(u64, u32)> = events
        .iter()
        .filter_map(|e| match e {
            Event::NodeCrash { round, node } => Some((*round, *node)),
            _ => None,
        })
        .collect();
    assert_eq!(crashes, vec![(1, 1), (3, 4)]);
    assert_three_way_identical(&plan, 6, 4);
}

/// The k-machine engine under chaos: fault decisions are keyed by the
/// *logical* `(seed, rule, round, src, dst, index)` coordinates, so the
/// same plan must replay byte-identically regardless of how the logical
/// nodes are mapped onto machines. This serializes the model-event
/// streams (the robustness record an E17-style experiment persists) and
/// compares the bytes, not just the in-memory events.
#[test]
fn mayhem_replays_byte_identically_on_any_machine_mapping() {
    let n = 8;
    let send_rounds = 4;
    let plan = FaultPlan::new(0xC1A0)
        .drop_messages(RoundRange::all(), LinkSelector::All, 0.2)
        .duplicate_messages(RoundRange::all(), LinkSelector::All, 0.2)
        .corrupt_messages(RoundRange::all(), LinkSelector::All, 0.2)
        .defer_messages(RoundRange::all(), LinkSelector::All, 0.2, 2)
        .crash(5, 2)
        .squeeze(RoundRange::between(1, 2), 2);

    let record = |events: &[Event]| -> String {
        events
            .iter()
            .map(|e| e.to_json().emit())
            .collect::<Vec<_>>()
            .join("\n")
    };

    let cfg = NetConfig::kt1(n);
    let rec = RecordingTracer::new();
    let mut serial = Runtime::serial(cfg.clone());
    serial.set_tracer(Box::new(rec.clone()));
    serial.set_fault_injector(Box::new(plan.injector()));
    let states = serial.run(adapt_all(programs(n, send_rounds)), 64).unwrap();
    let ref_out = outputs(&states.into_iter().map(|a| a.0).collect::<Vec<_>>());
    let ref_record = record(&rec.model_events());
    assert!(!ref_record.is_empty());

    for k in [1, 4, n] {
        let rec = RecordingTracer::new();
        let mut rt = Runtime::kmachine(cfg.clone(), k);
        rt.set_tracer(Box::new(rec.clone()));
        rt.set_fault_injector(Box::new(plan.injector()));
        let states = rt.run(adapt_all(programs(n, send_rounds)), 64).unwrap();
        let out = outputs(&states.into_iter().map(|a| a.0).collect::<Vec<_>>());
        assert_eq!(out, ref_out, "k={k}: outputs diverged under faults");
        assert_eq!(rt.cost(), serial.cost(), "k={k}: cost diverged");
        assert_eq!(
            record(&rec.model_events()),
            ref_record,
            "k={k}: serialized robustness record diverged"
        );
        // The mapping still prices the (pre-fault) sends: the ledger saw
        // every logical round.
        assert_eq!(rt.backend().stats().logical_rounds, rt.cost().rounds);
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random plans replay identically across all three engines.
        #[test]
        fn random_plans_replay_identically(
            seed in any::<u64>(),
            p_drop in 0u32..11,
            p_dup in 0u32..11,
            p_corrupt in 0u32..11,
            p_defer in 0u32..11,
            defer_by in 1u64..4,
            crash_node in 0usize..6,
            crash_round in 0u64..5,
            cap in 2u64..9,
        ) {
            let plan = FaultPlan::new(seed)
                .drop_messages(RoundRange::all(), LinkSelector::All, f64::from(p_drop) / 20.0)
                .duplicate_messages(RoundRange::all(), LinkSelector::All, f64::from(p_dup) / 20.0)
                .corrupt_messages(RoundRange::all(), LinkSelector::All, f64::from(p_corrupt) / 20.0)
                .defer_messages(RoundRange::all(), LinkSelector::All, f64::from(p_defer) / 20.0, defer_by)
                .crash(crash_node, crash_round)
                .squeeze(RoundRange::between(1, 3), cap);
            let runs = run_three_ways(6, 4, 64, &plan);
            let (ref_out, ref_cost, ref_events) = &runs[0];
            for (out, cost, events) in &runs[1..] {
                prop_assert_eq!(out, ref_out);
                prop_assert_eq!(cost, ref_cost);
                prop_assert_eq!(events, ref_events);
            }
        }
    }
}

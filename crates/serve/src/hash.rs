//! Canonical graph hashing and cache-key digests.
//!
//! A serve cache is only as good as its key: two requests for the *same*
//! graph must collide, and requests for different graphs must (almost
//! surely) not. Graphs arrive as edge lists in whatever order a client
//! produced them, possibly with repeats, so the hash canonicalizes first
//! — orient every edge small-endpoint-first, sort, drop exact duplicates
//! — and only then folds the list. The result is invariant under edge
//! permutation and duplication by construction (property-tested in
//! `tests/serve.rs`).
//!
//! Digests are 128 bits: two independent 64-bit folds over the same
//! canonical stream, each seeded differently. With ~2⁻¹²⁸ collision odds
//! the cache can treat digest equality as graph equality.

/// `splitmix64` finalizer: the cheap, well-mixed 64-bit permutation used
/// as the building block of every fold here.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One 64-bit fold over `words` starting from `seed`.
fn fold(seed: u64, words: impl Iterator<Item = u64>) -> u64 {
    let mut h = mix64(seed);
    for w in words {
        h = mix64(h ^ mix64(w));
    }
    h
}

/// A 128-bit content digest (the cache-key type).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl Digest {
    /// Two independent folds over the same word stream.
    fn of(words: &[u64]) -> Digest {
        let lo = fold(0x6363_2d73_6572_7665, words.iter().copied()); // "cc-serve"
        let hi = fold(0x6772_6170_682d_6b65, words.iter().copied()); // "graph-ke"
        Digest(((hi as u128) << 64) | lo as u128)
    }

    /// Short hex form (for logs and response metadata).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Canonical digest of an unweighted graph given as an edge list.
///
/// Invariant under edge order and duplicate edges: edges are oriented
/// `(min, max)`, sorted, and deduplicated before hashing. Self-loops are
/// canonicalized like any other pair; callers that consider them invalid
/// should reject them before hashing.
pub fn graph_digest(n: usize, edges: &[(u32, u32)]) -> Digest {
    let mut canon: Vec<(u32, u32)> = edges
        .iter()
        .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect();
    canon.sort_unstable();
    canon.dedup();
    let mut words = Vec::with_capacity(canon.len() + 2);
    words.push(0x756e_7765_6967_6874); // domain tag: "unweight"
    words.push(n as u64);
    words.extend(canon.iter().map(|&(u, v)| ((u as u64) << 32) | v as u64));
    Digest::of(&words)
}

/// Canonical digest of a weighted graph given as a `(u, v, w)` edge list.
///
/// Orientation, sorting, and exact-triple deduplication as in
/// [`graph_digest`]; the weight participates in the hash, so parallel
/// edges with different weights stay distinct.
pub fn wgraph_digest(n: usize, edges: &[(u32, u32, u64)]) -> Digest {
    let mut canon: Vec<(u32, u32, u64)> = edges
        .iter()
        .map(|&(a, b, w)| if a <= b { (a, b, w) } else { (b, a, w) })
        .collect();
    canon.sort_unstable();
    canon.dedup();
    let mut words = Vec::with_capacity(2 * canon.len() + 2);
    words.push(0x7765_6967_6874_6564); // domain tag: "weighted"
    words.push(n as u64);
    for &(u, v, w) in &canon {
        words.push(((u as u64) << 32) | v as u64);
        words.push(w);
    }
    Digest::of(&words)
}

/// Digest of a generator-defined graph: the `(tag, n, params…)` tuple
/// *is* the graph (generators are seed-deterministic), so hashing the
/// tuple is canonical by construction.
pub fn generated_digest(tag: &str, n: usize, params: &[u64]) -> Digest {
    let mut words = Vec::with_capacity(params.len() + 2 + tag.len() / 8 + 1);
    words.push(0x6765_6e65_7261_7465); // domain tag: "generate"
    for chunk in tag.as_bytes().chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(w));
    }
    words.push(n as u64);
    words.extend_from_slice(params);
    Digest::of(&words)
}

/// The full cache key of a job: graph digest ⊕ algorithm ⊕ engine ⊕
/// run parameters, folded into one digest.
pub fn job_digest(graph: Digest, algorithm: &str, engine: &str, seed: u64) -> Digest {
    let mut words = vec![
        0x006a_6f62_2d6b_6579, // domain tag: "job-key"
        graph.0 as u64,
        (graph.0 >> 64) as u64,
        seed,
    ];
    for part in [algorithm, engine] {
        for chunk in part.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            words.push(u64::from_le_bytes(w));
        }
        words.push(0x1f); // separator so ("ab","c") ≠ ("a","bc")
    }
    Digest::of(&words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_ignores_edge_order_and_duplicates() {
        let a = graph_digest(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = graph_digest(4, &[(2, 3), (0, 1), (1, 2)]);
        let c = graph_digest(4, &[(1, 0), (1, 2), (2, 3), (1, 2), (3, 2)]);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn digest_separates_different_graphs() {
        let base = graph_digest(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_ne!(base, graph_digest(4, &[(0, 1), (1, 2)]));
        assert_ne!(base, graph_digest(5, &[(0, 1), (1, 2), (2, 3)]));
        assert_ne!(base, graph_digest(4, &[(0, 1), (1, 3), (2, 3)]));
    }

    #[test]
    fn weighted_digest_tracks_weights() {
        let a = wgraph_digest(3, &[(0, 1, 5), (1, 2, 7)]);
        let b = wgraph_digest(3, &[(1, 2, 7), (1, 0, 5), (2, 1, 7)]);
        assert_eq!(a, b);
        assert_ne!(a, wgraph_digest(3, &[(0, 1, 5), (1, 2, 8)]));
        // An unweighted graph and its all-equal-weight cousin differ: the
        // domain tags keep the two universes apart.
        assert_ne!(
            graph_digest(3, &[(0, 1), (1, 2)]),
            wgraph_digest(3, &[(0, 1, 0), (1, 2, 0)])
        );
    }

    #[test]
    fn generated_and_job_digests_separate_parameters() {
        let g1 = generated_digest("random-connected", 64, &[3000, 7]);
        assert_eq!(g1, generated_digest("random-connected", 64, &[3000, 7]));
        assert_ne!(g1, generated_digest("random-connected", 64, &[3000, 8]));
        assert_ne!(g1, generated_digest("random-connected", 128, &[3000, 7]));
        assert_ne!(g1, generated_digest("complete-weighted", 64, &[3000, 7]));

        let j = job_digest(g1, "gc-sketch", "net", 1);
        assert_eq!(j, job_digest(g1, "gc-sketch", "net", 1));
        assert_ne!(j, job_digest(g1, "gc-sketch", "net", 2));
        assert_ne!(j, job_digest(g1, "exact-mst", "net", 1));
        assert_ne!(j, job_digest(g1, "gc-sketch", "serial", 1));
        // The separator keeps (algorithm, engine) splits apart.
        assert_ne!(
            job_digest(g1, "ab", "c", 1),
            job_digest(g1, "a", "bc", 1),
            "field boundaries must be part of the key"
        );
    }
}

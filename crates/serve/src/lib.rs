//! cc-serve: an async job service over the congested-clique engines.
//!
//! The simulator crates answer one question per process: build a graph,
//! run an algorithm, print the cost. This crate turns that into a
//! *service* — a long-running daemon that schedules many simulations
//! concurrently over the existing pooled engines and answers each request
//! with a streamed, versioned [`cc_trace::RunArtifact`].
//!
//! The pieces, bottom-up:
//!
//! - [`hash`] — canonical graph digests (edge-order- and
//!   duplicate-invariant) and the job cache key derived from them;
//! - [`cache`] — a bounded, deterministic LRU from cache keys to sealed
//!   artifact documents;
//! - [`job`] — the typed request: graph spec (explicit edges or a seeded
//!   generator), algorithm (`gc-sketch`, `exact-mst`, `rt-conn`), engine
//!   backend, run seed — plus the executor that runs it on the existing
//!   engines under a streaming tracer;
//! - [`pool`] — the bounded job queue and worker pool with backpressure,
//!   in-flight coalescing, and graceful drain-on-close;
//! - [`server`] — the line-delimited JSON protocol (stdin/stdout or TCP)
//!   that the `serve` binary speaks and `cc-bench loadgen` drives.
//!
//! The load-bearing guarantee, end to end: submitting the same job twice
//! costs one execution, and every answer for a given job is
//! **byte-identical** — the artifact text is built once, cached as
//! `Arc<str>`, and spliced verbatim into every response line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hash;
pub mod job;
pub mod pool;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use hash::{graph_digest, job_digest, wgraph_digest, Digest};
pub use job::{execute, Algorithm, Engine, ExecOutcome, GraphSpec, JobSpec};
pub use pool::{default_slo_rules, Response, ServeConfig, ServeStats, Server, SubmitOutcome};
pub use server::{parse_request, run_session, Request, VALID_OPS};

//! The bounded job queue, worker pool, and response streaming.
//!
//! A [`Server`] owns `workers` OS threads executing jobs popped from a
//! bounded FIFO. Admission control happens in [`Server::submit`], under
//! one lock, in strict order:
//!
//! 1. **cache** — a finished identical job answers immediately from the
//!    LRU, byte-identical to the cold run;
//! 2. **coalesce** — an identical job already queued or running adopts
//!    the caller as a waiter: one execution, many answers, no queue slot;
//! 3. **backpressure** — a full queue (or a closing server) rejects the
//!    job with a `rejected` response rather than growing without bound;
//! 4. **enqueue** — otherwise the job enters the queue and its lifecycle
//!    streams back: `queued` → `running` → `progress`… → `result`.
//!
//! Because cache lookup, pending lookup, and enqueue are atomic (and a
//! finishing worker inserts into the cache and retires its pending entry
//! under the same lock), a duplicate of any submitted job *never*
//! recomputes: the number of cold executions equals the number of
//! distinct cache keys, deterministically — the property the load bench
//! gates as the duplicate hit rate.
//!
//! Shutdown ([`Server::close`]) stops admissions but drains the queue:
//! every accepted job still runs to completion and delivers exactly one
//! terminal response to its submitter and every coalesced waiter
//! (stress-tested in `tests/serve.rs`).

use crate::cache::{CacheStats, ResultCache};
use crate::hash::Digest;
use crate::job::{execute, JobSpec};
use cc_lens::{comm_metrics, CommAggregate, CommLedger};
use cc_model::ModelSpec;
use cc_obs::{
    render_prometheus, AlertEngine, AlertEvent, HealthReport, SharedClock, SloKind, SloRule,
    SpanBook, SpanOutcome, WallClock, WindowSpec, WindowedRegistry, WindowedSnapshot,
};
use cc_trace::{
    metrics_from_events, Event, ExperimentRecord, Json, RecordingTracer, RunArtifact, Tracer,
};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Pool sizing knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queue slots; submissions beyond this are rejected (backpressure).
    pub queue_capacity: usize,
    /// Result-cache entries.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    /// 2 workers, 128 queue slots (double the 64 concurrent in-flight
    /// jobs the serving layer is specified for), 256 cached results.
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 128,
            cache_capacity: 256,
        }
    }
}

/// One streamed server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job was admitted to the queue (or adopted by an identical
    /// in-flight job when `coalesced`).
    Queued {
        /// Client-chosen job id.
        id: String,
        /// Queue depth right after admission.
        queue_depth: u64,
        /// Whether the job rides an identical in-flight execution.
        coalesced: bool,
    },
    /// The job was not admitted; no further responses will follow.
    Rejected {
        /// Client-chosen job id.
        id: String,
        /// Why (queue full, closing, or an invalid spec).
        reason: String,
    },
    /// A worker started executing the job.
    Running {
        /// Client-chosen job id.
        id: String,
        /// Nanoseconds the job waited in the queue.
        queue_nanos: u64,
    },
    /// The run entered a named algorithm phase (from cc-trace scope
    /// events) or crossed a round milestone.
    Progress {
        /// Client-chosen job id.
        id: String,
        /// Phase name (`phase1`, `exact-mst:lotker`, `round`, …).
        phase: String,
        /// Rounds completed when the phase opened.
        round: u64,
    },
    /// Terminal: the sealed v3 [`RunArtifact`] document (compact JSON).
    Result {
        /// Client-chosen job id.
        id: String,
        /// Whether the document came from the cache (or a coalesced
        /// execution) rather than a cold run owned by this submission.
        cached: bool,
        /// The artifact text — byte-identical across cache hits.
        artifact: Arc<str>,
    },
    /// Terminal: the job failed (validation passed but execution did
    /// not — simulator violation, round cap, sketch exhaustion).
    Error {
        /// Client-chosen job id.
        id: String,
        /// One-line description.
        error: String,
    },
    /// Snapshot answer to a `stats` request.
    Stats(Box<ServeStats>),
    /// Answer to a `metrics` request: the Prometheus-style exposition of
    /// the cumulative registry plus the windowed snapshot as JSON.
    Metrics {
        /// The exposition text (multi-line; JSON-escaped on the wire).
        exposition: String,
        /// [`WindowedSnapshot`] object form.
        windows: Json,
    },
    /// Answer to a `health` request.
    Health(Box<HealthReport>),
    /// Answer to a `spans` request: `{"live": [...], "recent": [...]}`.
    Spans(Json),
    /// Answer to a `links` request: the live [`cc_lens::CommAggregate`]
    /// over every cold job this server executed (utilization peak and
    /// quantiles, headroom, broadcast/unicast mix).
    Links(Json),
    /// Acknowledgement of a `shutdown` request.
    Closing,
}

impl Response {
    /// The job id this response belongs to (empty for server-level
    /// responses).
    pub fn id(&self) -> &str {
        match self {
            Response::Queued { id, .. }
            | Response::Rejected { id, .. }
            | Response::Running { id, .. }
            | Response::Progress { id, .. }
            | Response::Result { id, .. }
            | Response::Error { id, .. } => id,
            Response::Stats(_)
            | Response::Metrics { .. }
            | Response::Health(_)
            | Response::Spans(_)
            | Response::Links(_)
            | Response::Closing => "",
        }
    }

    /// Whether this is the last response a submission will see.
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            Response::Rejected { .. } | Response::Result { .. } | Response::Error { .. }
        )
    }

    /// One line of the wire protocol (no trailing newline).
    ///
    /// The artifact inside a `result` is spliced in verbatim, so the
    /// bytes a client receives for a cache hit are exactly the bytes of
    /// the cold run's document.
    pub fn to_line(&self) -> String {
        let s = |text: &str| Json::Str(text.to_string()).emit();
        match self {
            Response::Queued {
                id,
                queue_depth,
                coalesced,
            } => format!(
                "{{\"kind\":\"queued\",\"id\":{},\"queue_depth\":{queue_depth},\"coalesced\":{coalesced}}}",
                s(id)
            ),
            Response::Rejected { id, reason } => format!(
                "{{\"kind\":\"rejected\",\"id\":{},\"reason\":{}}}",
                s(id),
                s(reason)
            ),
            Response::Running { id, queue_nanos } => format!(
                "{{\"kind\":\"running\",\"id\":{},\"queue_nanos\":{queue_nanos}}}",
                s(id)
            ),
            Response::Progress { id, phase, round } => format!(
                "{{\"kind\":\"progress\",\"id\":{},\"phase\":{},\"round\":{round}}}",
                s(id),
                s(phase)
            ),
            Response::Result {
                id,
                cached,
                artifact,
            } => format!(
                "{{\"kind\":\"result\",\"id\":{},\"cached\":{cached},\"artifact\":{artifact}}}",
                s(id)
            ),
            Response::Error { id, error } => format!(
                "{{\"kind\":\"error\",\"id\":{},\"error\":{}}}",
                s(id),
                s(error)
            ),
            Response::Stats(stats) => {
                let mut obj = vec![("kind".to_string(), Json::Str("stats".into()))];
                if let Json::Obj(fields) = stats.to_json() {
                    obj.extend(fields);
                }
                Json::Obj(obj).emit()
            }
            Response::Metrics {
                exposition,
                windows,
            } => Json::obj(vec![
                ("kind", Json::Str("metrics".into())),
                ("exposition", Json::Str(exposition.clone())),
                ("windows", windows.clone()),
            ])
            .emit(),
            Response::Health(report) => {
                let mut obj = vec![("kind".to_string(), Json::Str("health".into()))];
                if let Json::Obj(fields) = report.to_json() {
                    obj.extend(fields);
                }
                Json::Obj(obj).emit()
            }
            Response::Spans(spans) => {
                let mut obj = vec![("kind".to_string(), Json::Str("spans".into()))];
                if let Json::Obj(fields) = spans.clone() {
                    obj.extend(fields);
                }
                Json::Obj(obj).emit()
            }
            Response::Links(links) => {
                let mut obj = vec![("kind".to_string(), Json::Str("links".into()))];
                if let Json::Obj(fields) = links.clone() {
                    obj.extend(fields);
                }
                Json::Obj(obj).emit()
            }
            Response::Closing => "{\"kind\":\"closing\"}".into(),
        }
    }
}

/// How [`Server::submit`] disposed of a submission.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Answered immediately from the result cache.
    CacheHit,
    /// Adopted by an identical queued/running job.
    Coalesced,
    /// Entered the queue for execution.
    Enqueued,
    /// Turned away (full queue, closing server, or invalid spec).
    Rejected,
}

/// A point-in-time server statistics snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Jobs waiting in the queue.
    pub queue_depth: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Whether submissions are still admitted.
    pub accepting: bool,
    /// Total submissions seen (any outcome).
    pub submitted: u64,
    /// Jobs completed successfully (cold executions).
    pub completed: u64,
    /// Jobs that failed in execution.
    pub failed: u64,
    /// Submissions rejected (backpressure, closing, invalid).
    pub rejected: u64,
    /// Submissions answered by an in-flight coalesce.
    pub coalesced: u64,
    /// Result-cache traffic.
    pub cache: CacheStats,
    /// The serve metrics registry (queue depth, per-job wall time,
    /// hit/miss counters) as a snapshot.
    pub metrics: cc_trace::MetricsSnapshot,
}

impl ServeStats {
    /// Duplicate hit rate: submissions that skipped execution (cache
    /// hits + coalesced) over all submissions that consulted the cache.
    ///
    /// Every valid submission does exactly one cache lookup, so the
    /// denominator is `cache.hits + cache.misses`; coalesced submissions
    /// counted a miss there but still skipped execution, so they move to
    /// the numerator.
    pub fn duplicate_hit_rate(&self) -> f64 {
        let looked_up = self.cache.hits + self.cache.misses;
        if looked_up == 0 {
            0.0
        } else {
            (self.cache.hits + self.coalesced) as f64 / looked_up as f64
        }
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queue_depth", Json::UInt(self.queue_depth)),
            ("running", Json::UInt(self.running)),
            ("accepting", Json::Bool(self.accepting)),
            ("submitted", Json::UInt(self.submitted)),
            ("completed", Json::UInt(self.completed)),
            ("failed", Json::UInt(self.failed)),
            ("rejected", Json::UInt(self.rejected)),
            ("coalesced", Json::UInt(self.coalesced)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::UInt(self.cache.hits)),
                    ("misses", Json::UInt(self.cache.misses)),
                    ("insertions", Json::UInt(self.cache.insertions)),
                    ("evictions", Json::UInt(self.cache.evictions)),
                    ("resident_bytes", Json::UInt(self.cache.resident_bytes)),
                    ("hit_rate", Json::Float(self.cache.hit_rate())),
                ]),
            ),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

struct Waiter {
    id: String,
    reply: Sender<Response>,
}

struct QueuedJob {
    id: String,
    spec: JobSpec,
    key: Digest,
    queued_unix_nanos: u64,
    reply: Sender<Response>,
}

/// Finished spans retained for `{"op":"spans"}` queries.
const RECENT_SPANS: usize = 512;

struct State {
    queue: VecDeque<QueuedJob>,
    /// Cache key → waiters of the identical queued/running job.
    pending: HashMap<Digest, Vec<Waiter>>,
    accepting: bool,
    running: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    coalesced: u64,
    cache: ResultCache,
    /// Windowed metrics wrapping the cumulative registry: both views are
    /// fed by the same calls, so live windows cannot drift from the
    /// full-run snapshot `stats` and artifacts report.
    metrics: WindowedRegistry,
    /// Per-job timelines.
    spans: SpanBook,
    /// SLO rules plus the currently firing set.
    alerts: AlertEngine,
    /// Alert transitions not yet collected by the session layer.
    alert_log: Vec<AlertEvent>,
    /// Exact merge of every cold job's communication fold, answering
    /// `{"op":"links"}`. Fed from the same recorded event stream the
    /// artifact's `comm` metrics come from, so the aggregate can never
    /// drift from the per-job documents.
    comm: CommAggregate,
}

impl State {
    /// Re-evaluates the SLO rules at `now` and queues any transitions.
    fn evaluate_alerts(&mut self, now_nanos: u64, queue_capacity: usize) {
        let snap = self.metrics.snapshot(now_nanos);
        let events = self
            .alerts
            .evaluate(now_nanos, &snap, self.queue.len(), queue_capacity);
        self.alert_log.extend(events);
    }
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Signals workers: queue non-empty or closing.
    jobs_cv: Condvar,
    /// Signals drainers: a job finished.
    idle_cv: Condvar,
    /// The time source every reading flows through (wall in production,
    /// manual in tests — see cc-obs).
    clock: SharedClock,
    started_nanos: u64,
}

impl Shared {
    /// Locks the shared state, recovering from poison.
    ///
    /// A panic while the lock is held (a bug, but one the daemon must
    /// survive) marks the mutex poisoned forever; propagating that as a
    /// panic from every later `lock()` turns one bad job into a dead
    /// server — every `submit`, `stats`, and worker loop would die in a
    /// cascade. Admission bookkeeping is written in whole-transaction
    /// blocks under a single lock acquisition, so the state a recovering
    /// thread observes is at worst missing the interrupted job's final
    /// counter updates; serving slightly stale stats beats serving
    /// nothing. Worker panics themselves are additionally contained at
    /// the job boundary (see `run_job`), which keeps `running`/`pending`
    /// consistent even for the job that blew up.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// [`Condvar::wait`] with the same poison recovery as
    /// [`Shared::lock_state`].
    fn wait_on<'a>(&self, cv: &Condvar, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }
}

/// The job service: bounded queue + worker pool + result cache.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// The default SLO rules the pool watches: p95 job wall time over 1 ms
/// on the 10 s window, queue at ≥ 80 % of capacity, and a duplicate hit
/// rate under 25 % on the 60 s window once 16 lookups accrued. The
/// latency threshold is generous for the small graphs CI serves; real
/// deployments build their own rule set and pass it nowhere — rules are
/// fixed at start, by design (alert churn should come from traffic, not
/// reconfiguration races).
pub fn default_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "latency-burn-p95".into(),
            window: "10s".into(),
            kind: SloKind::LatencyBurn {
                histogram: "serve.job_wall_nanos".into(),
                q_milli: 950,
                threshold_nanos: 1_000_000_000,
            },
        },
        SloRule {
            name: "queue-saturation".into(),
            window: "1s".into(),
            kind: SloKind::QueueSaturation { frac_milli: 800 },
        },
        SloRule {
            name: "hit-rate-floor".into(),
            window: "60s".into(),
            kind: SloKind::HitRateFloor {
                hits: vec!["serve.cache_hits".into(), "serve.coalesced_hits".into()],
                misses: "serve.cache_misses".into(),
                min_milli: 250,
                min_samples: 16,
            },
        },
    ]
}

/// The tracer workers attach: records model events for the artifact's
/// metrics section and forwards phase boundaries (plus coarse round
/// milestones) as streamed `progress` responses.
struct StreamTracer {
    rec: RecordingTracer,
    reply: Sender<Response>,
    id: String,
}

/// Emit a `progress` line every this many rounds for long scope-free
/// stretches (rt-conn runs thousands of rounds inside one scope).
const PROGRESS_ROUND_STRIDE: u64 = 512;

impl Tracer for StreamTracer {
    fn wants_timing(&self) -> bool {
        // Keep the recorded stream model-only: the artifact's metrics are
        // then deterministic per spec, and the clock reads are skipped.
        false
    }

    fn record(&mut self, event: Event) {
        match &event {
            Event::ScopeEnter { name, round } => {
                let _ = self.reply.send(Response::Progress {
                    id: self.id.clone(),
                    phase: name.clone(),
                    round: *round,
                });
            }
            Event::RoundStart { round } if *round > 0 && round % PROGRESS_ROUND_STRIDE == 0 => {
                let _ = self.reply.send(Response::Progress {
                    id: self.id.clone(),
                    phase: "round".into(),
                    round: *round,
                });
            }
            _ => {}
        }
        self.rec.record(event);
    }
}

impl Server {
    /// Starts the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers == 0` or `cfg.queue_capacity == 0`.
    pub fn start(cfg: ServeConfig) -> Server {
        Server::start_with_clock(cfg, WallClock::shared())
    }

    /// Starts the worker pool on an explicit time source. Tests pass a
    /// `cc_obs::ManualClock` so windowed metrics, spans, and alert
    /// transitions are deterministic; [`Server::start`] passes the
    /// unix-anchored wall clock.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers == 0` or `cfg.queue_capacity == 0`.
    pub fn start_with_clock(cfg: ServeConfig, clock: SharedClock) -> Server {
        assert!(cfg.workers > 0, "a pool needs at least one worker");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        let started_nanos = clock.now_nanos();
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: HashMap::new(),
                accepting: true,
                running: 0,
                submitted: 0,
                completed: 0,
                failed: 0,
                rejected: 0,
                coalesced: 0,
                cache: ResultCache::new(cfg.cache_capacity),
                metrics: WindowedRegistry::new(WindowSpec::standard()),
                spans: SpanBook::new(RECENT_SPANS),
                alerts: AlertEngine::new(default_slo_rules()),
                alert_log: Vec::new(),
                comm: CommAggregate::new(),
            }),
            jobs_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            clock,
            started_nanos,
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server { shared, workers }
    }

    /// Submits a job. Every submission receives at least one response on
    /// `reply`, and exactly one terminal response ([`Response::terminal`]).
    pub fn submit(&self, id: &str, spec: JobSpec, reply: &Sender<Response>) -> SubmitOutcome {
        let send = |r: Response| {
            let _ = reply.send(r);
        };
        let now = self.shared.clock.now_nanos();
        let mut st = self.shared.lock_state();
        st.submitted += 1;
        if let Err(problem) = spec.validate() {
            st.rejected += 1;
            st.metrics.counter_add("serve.jobs_rejected", now, 1);
            st.spans.finished(id, "", now, SpanOutcome::Rejected);
            send(Response::Rejected {
                id: id.into(),
                reason: format!("invalid job: {problem}"),
            });
            return SubmitOutcome::Rejected;
        }
        let key = spec.cache_key();
        if let Some(artifact) = st.cache.get(&key) {
            st.metrics.counter_add("serve.cache_hits", now, 1);
            st.spans.finished(id, &key.hex(), now, SpanOutcome::Served);
            send(Response::Result {
                id: id.into(),
                cached: true,
                artifact,
            });
            return SubmitOutcome::CacheHit;
        }
        // A miss that coalesces below is not a cold execution; the cache
        // miss counter tracks cold runs, so undo the `get` accounting via
        // the pending check *before* counting.
        if let Some(waiters) = st.pending.get_mut(&key) {
            waiters.push(Waiter {
                id: id.into(),
                reply: reply.clone(),
            });
            st.coalesced += 1;
            st.metrics.counter_add("serve.coalesced_hits", now, 1);
            st.spans.admitted(id, &key.hex(), now);
            let depth = st.queue.len() as u64;
            send(Response::Queued {
                id: id.into(),
                queue_depth: depth,
                coalesced: true,
            });
            return SubmitOutcome::Coalesced;
        }
        if !st.accepting {
            st.rejected += 1;
            st.metrics.counter_add("serve.jobs_rejected", now, 1);
            st.spans
                .finished(id, &key.hex(), now, SpanOutcome::Rejected);
            send(Response::Rejected {
                id: id.into(),
                reason: "server is shutting down".into(),
            });
            return SubmitOutcome::Rejected;
        }
        if st.queue.len() >= self.shared.cfg.queue_capacity {
            st.rejected += 1;
            st.metrics.counter_add("serve.jobs_rejected", now, 1);
            st.spans
                .finished(id, &key.hex(), now, SpanOutcome::Rejected);
            st.evaluate_alerts(now, self.shared.cfg.queue_capacity);
            send(Response::Rejected {
                id: id.into(),
                reason: format!(
                    "queue full ({} jobs); retry later",
                    self.shared.cfg.queue_capacity
                ),
            });
            return SubmitOutcome::Rejected;
        }
        st.metrics.counter_add("serve.cache_misses", now, 1);
        st.pending.insert(key, Vec::new());
        st.queue.push_back(QueuedJob {
            id: id.into(),
            spec,
            key,
            queued_unix_nanos: now,
            reply: reply.clone(),
        });
        st.spans.admitted(id, &key.hex(), now);
        let depth = st.queue.len() as u64;
        st.metrics.observe("serve.queue_depth", now, depth);
        send(Response::Queued {
            id: id.into(),
            queue_depth: depth,
            coalesced: false,
        });
        drop(st);
        self.shared.jobs_cv.notify_one();
        SubmitOutcome::Enqueued
    }

    /// Stops admitting jobs. Queued and running jobs still complete and
    /// deliver their responses; call [`Server::drain`] or
    /// [`Server::join`] to wait for them.
    pub fn close(&self) {
        let mut st = self.shared.lock_state();
        st.accepting = false;
        drop(st);
        self.shared.jobs_cv.notify_all();
    }

    /// Blocks until the queue is empty and no job is running.
    pub fn drain(&self) {
        let mut st = self.shared.lock_state();
        while !st.queue.is_empty() || st.running > 0 {
            st = self.shared.wait_on(&self.shared.idle_cv, st);
        }
    }

    /// Closes, drains, and joins the workers.
    pub fn join(mut self) {
        self.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        let st = self.shared.lock_state();
        ServeStats {
            queue_depth: st.queue.len() as u64,
            running: st.running,
            accepting: st.accepting,
            submitted: st.submitted,
            completed: st.completed,
            failed: st.failed,
            rejected: st.rejected,
            coalesced: st.coalesced,
            cache: st.cache.stats(),
            metrics: st.metrics.cumulative_snapshot(),
        }
    }

    /// The Prometheus-style exposition of the cumulative registry plus
    /// the live windowed snapshot, taken atomically.
    pub fn metrics_exposition(&self) -> (String, WindowedSnapshot) {
        let now = self.shared.clock.now_nanos();
        let st = self.shared.lock_state();
        (
            render_prometheus(&st.metrics.cumulative_snapshot()),
            st.metrics.snapshot(now),
        )
    }

    /// A health report: admission scalars, worker liveness, cache
    /// occupancy, and the firing SLO alerts (rules are re-evaluated as
    /// part of answering, so a health poll is also an alert tick).
    pub fn health(&self) -> HealthReport {
        let now = self.shared.clock.now_nanos();
        let workers_alive = self.workers.iter().filter(|w| !w.is_finished()).count();
        let mut st = self.shared.lock_state();
        st.evaluate_alerts(now, self.shared.cfg.queue_capacity);
        let cache_stats = st.cache.stats();
        HealthReport {
            accepting: st.accepting,
            queue_depth: st.queue.len(),
            queue_capacity: self.shared.cfg.queue_capacity,
            in_flight: st.running as usize,
            workers: self.shared.cfg.workers,
            workers_alive,
            cache_entries: st.cache.len(),
            cache_capacity: self.shared.cfg.cache_capacity,
            cache_resident_bytes: cache_stats.resident_bytes as usize,
            uptime_nanos: now.saturating_sub(self.shared.started_nanos),
            firing: st.alerts.firing(),
        }
    }

    /// Live and recently finished job spans as JSON.
    pub fn spans_json(&self) -> Json {
        let st = self.shared.lock_state();
        st.spans.to_json()
    }

    /// The live communication aggregate over every cold job, as the
    /// `{"op":"links"}` payload.
    pub fn links_json(&self) -> Json {
        let st = self.shared.lock_state();
        st.comm.to_json()
    }

    /// Drains the alert transitions accrued since the last call. The
    /// session layer forwards them as structured log lines.
    pub fn take_alert_events(&self) -> Vec<AlertEvent> {
        let mut st = self.shared.lock_state();
        std::mem::take(&mut st.alert_log)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.lock_state();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.running += 1;
                    break job;
                }
                if !st.accepting {
                    return;
                }
                st = shared.wait_on(&shared.jobs_cv, st);
            }
        };
        run_job(shared, job);
        shared.idle_cv.notify_all();
    }
}

/// Compute-phase boundaries of a recorded run: every scope the tracer
/// saw, in order, with the round it opened at. Model events only, so the
/// marks are deterministic per spec — the artifact record built from
/// them keeps cache hits byte-identical.
fn phase_marks(events: &[Event]) -> Vec<(String, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::ScopeEnter { name, round } => Some((name.clone(), *round)),
            _ => None,
        })
        .collect()
}

/// Renders a caught panic payload as one line (`&str` and `String`
/// payloads cover `panic!`/`assert!`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Test-only fault injection: arming [`INJECT`](test_panic::INJECT)
/// makes the next job any worker executes panic inside the contained
/// region, exactly where a real algorithm bug would.
#[cfg(test)]
pub(crate) mod test_panic {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// One-shot trigger; `maybe_panic` disarms it as it fires.
    pub static INJECT: AtomicBool = AtomicBool::new(false);

    pub fn maybe_panic() {
        if INJECT.swap(false, Ordering::SeqCst) {
            panic!("injected worker panic");
        }
    }
}

fn run_job(shared: &Shared, job: QueuedJob) {
    // Clamp so queued ≤ started ≤ finished even if the clock is shared
    // with a test that never advances it.
    let started_unix = shared.clock.now_nanos().max(job.queued_unix_nanos);
    let queue_nanos = started_unix - job.queued_unix_nanos;
    {
        let mut st = shared.lock_state();
        st.spans.started(&job.id, started_unix);
    }
    let _ = job.reply.send(Response::Running {
        id: job.id.clone(),
        queue_nanos,
    });
    let rec = RecordingTracer::new();
    let tracer = StreamTracer {
        rec: rec.clone(),
        reply: job.reply.clone(),
        id: job.id.clone(),
    };
    // Contain panics at the job boundary: `execute` runs lock-free, so a
    // panic here (an algorithm bug, a poisoned-input assert) must cost
    // exactly one job — it folds into the ordinary `Err` path below,
    // which decrements `running`, retires the pending entry, and answers
    // this submitter and every coalesced waiter with an `error` response.
    // Without this, the worker thread dies: the pool quietly loses a
    // thread per bad job until the daemon stops serving.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        #[cfg(test)]
        test_panic::maybe_panic();
        execute(&job.spec, Box::new(tracer))
    }))
    .unwrap_or_else(|payload| Err(format!("worker panicked: {}", panic_message(&*payload))));
    let finished_unix = shared.clock.now_nanos().max(started_unix);
    let compute_nanos = finished_unix - started_unix;

    match outcome {
        Ok(exec) => {
            let events = rec.events();
            let phases = phase_marks(&events);
            // Every engine runs under `NetConfig::kt1(n)` with the default
            // link budget, which is exactly `ModelSpec::clique()` — so the
            // lens fold measures utilization against the budget the run
            // was actually admitted under.
            let lens = CommLedger::fold(job.spec.graph.n(), &ModelSpec::clique(), &events)
                .expect("a completed run's recorded stream always folds");
            let comm_report = lens.report();
            let mut artifact = RunArtifact::new("cc-serve")
                .with_meta("algorithm", job.spec.algorithm.tag())
                .with_meta("engine", job.spec.engine.tag())
                .with_meta("n", &job.spec.graph.n().to_string())
                .with_meta("seed", &job.spec.seed.to_string())
                .with_meta("cache_key", &job.key.hex())
                .with_job_timestamps(job.queued_unix_nanos, started_unix, finished_unix);
            artifact.experiments.push(ExperimentRecord {
                id: "job-summary".into(),
                caption: format!("{} on {}", job.spec.algorithm.tag(), job.spec.engine.tag()),
                headers: vec!["metric".into(), "value".into()],
                rows: exec
                    .summary
                    .iter()
                    .map(|(k, v)| vec![k.clone(), v.clone()])
                    .collect(),
            });
            artifact.experiments.push(ExperimentRecord {
                id: "job-span".into(),
                caption: "compute phases by simulated round".into(),
                headers: vec!["phase".into(), "round".into()],
                rows: phases
                    .iter()
                    .map(|(name, round)| vec![name.clone(), round.to_string()])
                    .collect(),
            });
            artifact.experiments.push(ExperimentRecord {
                id: "job-comm".into(),
                caption: "communication summary (cc-lens fold)".into(),
                headers: vec!["metric".into(), "value".into()],
                rows: vec![
                    vec!["rounds".into(), comm_report.rounds.to_string()],
                    vec!["messages".into(), comm_report.messages.to_string()],
                    vec!["words".into(), comm_report.words.to_string()],
                    vec!["active_links".into(), comm_report.active_links.to_string()],
                    vec![
                        "peak_util_milli".into(),
                        comm_report.peak_util_milli.to_string(),
                    ],
                    vec![
                        "headroom_milli".into(),
                        comm_report.headroom_milli.to_string(),
                    ],
                    vec![
                        "broadcast_words".into(),
                        comm_report.broadcast_words.to_string(),
                    ],
                    vec![
                        "unicast_words".into(),
                        comm_report.unicast_words.to_string(),
                    ],
                    vec![
                        "pair_skew_milli".into(),
                        comm_report.pair_skew_milli.to_string(),
                    ],
                ],
            });
            artifact
                .metrics
                .push(("job".into(), metrics_from_events(&events).snapshot()));
            artifact.metrics.push(("comm".into(), comm_metrics(&lens)));
            debug_assert!(artifact.validate().is_ok(), "{:?}", artifact.validate());
            let text: Arc<str> = Arc::from(artifact.to_json().emit());

            let waiters = {
                let mut st = shared.lock_state();
                st.cache.insert(job.key, Arc::clone(&text));
                st.comm.absorb(&lens);
                st.running -= 1;
                st.completed += 1;
                st.metrics
                    .counter_add("serve.jobs_completed", finished_unix, 1);
                st.metrics
                    .observe("serve.queue_nanos", finished_unix, queue_nanos);
                st.metrics
                    .observe("serve.compute_nanos", finished_unix, compute_nanos);
                st.metrics.observe(
                    "serve.job_wall_nanos",
                    finished_unix,
                    queue_nanos + compute_nanos,
                );
                for (name, round) in &phases {
                    st.spans.phase(&job.id, name, *round);
                }
                let key_hex = job.key.hex();
                st.spans
                    .finished(&job.id, &key_hex, finished_unix, SpanOutcome::Completed);
                let waiters = st.pending.remove(&job.key).unwrap_or_default();
                for w in &waiters {
                    st.spans
                        .finished(&w.id, &key_hex, finished_unix, SpanOutcome::Served);
                }
                st.evaluate_alerts(finished_unix, shared.cfg.queue_capacity);
                waiters
            };
            let _ = job.reply.send(Response::Result {
                id: job.id,
                cached: false,
                artifact: Arc::clone(&text),
            });
            for w in waiters {
                let _ = w.reply.send(Response::Result {
                    id: w.id,
                    cached: true,
                    artifact: Arc::clone(&text),
                });
            }
        }
        Err(error) => {
            let waiters = {
                let mut st = shared.lock_state();
                st.running -= 1;
                st.failed += 1;
                st.metrics
                    .counter_add("serve.jobs_failed", finished_unix, 1);
                let key_hex = job.key.hex();
                st.spans
                    .finished(&job.id, &key_hex, finished_unix, SpanOutcome::Failed);
                let waiters = st.pending.remove(&job.key).unwrap_or_default();
                for w in &waiters {
                    st.spans
                        .finished(&w.id, &key_hex, finished_unix, SpanOutcome::Failed);
                }
                st.evaluate_alerts(finished_unix, shared.cfg.queue_capacity);
                waiters
            };
            let _ = job.reply.send(Response::Error {
                id: job.id,
                error: error.clone(),
            });
            for w in waiters {
                let _ = w.reply.send(Response::Error {
                    id: w.id,
                    error: error.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Algorithm, Engine, GraphSpec};
    use std::sync::mpsc::channel;

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            graph: GraphSpec::RandomConnected {
                n: 16,
                degree_milli: 3000,
                seed: 1,
            },
            algorithm: Algorithm::GcSketch,
            engine: Engine::Net,
            seed,
        }
    }

    fn drain_terminal(rx: &std::sync::mpsc::Receiver<Response>) -> Response {
        loop {
            let r = rx.recv().expect("a terminal response must arrive");
            if r.terminal() {
                return r;
            }
        }
    }

    #[test]
    fn cold_then_hit_serves_identical_bytes() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (tx, rx) = channel();
        assert_eq!(server.submit("a", spec(1), &tx), SubmitOutcome::Enqueued);
        let cold = match drain_terminal(&rx) {
            Response::Result {
                cached, artifact, ..
            } => {
                assert!(!cached);
                artifact
            }
            other => panic!("expected result, got {other:?}"),
        };
        // Identical job → pure cache hit with the same bytes.
        assert_eq!(server.submit("b", spec(1), &tx), SubmitOutcome::CacheHit);
        match drain_terminal(&rx) {
            Response::Result {
                cached, artifact, ..
            } => {
                assert!(cached);
                assert_eq!(artifact, cold, "hit must be byte-identical");
            }
            other => panic!("expected result, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.completed, 1);
        server.join();
    }

    #[test]
    fn panicking_worker_degrades_one_job_not_the_daemon() {
        let server = Server::start(ServeConfig::default());
        let (tx, rx) = channel();

        // Arm the one-shot fault: the next executed job panics inside
        // the contained region of `run_job`.
        test_panic::INJECT.store(true, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(server.submit("boom", spec(1), &tx), SubmitOutcome::Enqueued);
        match drain_terminal(&rx) {
            Response::Error { id, error } => {
                assert_eq!(id, "boom");
                assert!(
                    error.contains("worker panicked: injected worker panic"),
                    "error should carry the panic message, got {error:?}"
                );
            }
            other => panic!("expected error, got {other:?}"),
        }

        // The pool keeps serving: a fresh job completes cold...
        assert_eq!(server.submit("next", spec(2), &tx), SubmitOutcome::Enqueued);
        match drain_terminal(&rx) {
            Response::Result { cached, .. } => assert!(!cached),
            other => panic!("expected result, got {other:?}"),
        }
        // ...and resubmitting the job that blew up also succeeds (a
        // failure must not cache or wedge its pending entry).
        assert_eq!(
            server.submit("retry", spec(1), &tx),
            SubmitOutcome::Enqueued
        );
        match drain_terminal(&rx) {
            Response::Result { cached, .. } => assert!(!cached),
            other => panic!("expected result, got {other:?}"),
        }

        let health = server.health();
        assert_eq!(
            health.workers_alive, health.workers,
            "every worker thread must survive the panic"
        );
        assert_eq!(
            health.in_flight, 0,
            "the failed job must not leak `running`"
        );
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 2);
        server.join();
    }

    #[test]
    fn poisoned_state_lock_is_recovered_not_propagated() {
        let server = Server::start(ServeConfig::default());
        // Poison the state mutex the hard way: panic while holding it on
        // a foreign thread (the one failure mode `catch_unwind` in
        // `run_job` cannot prevent, since it only covers `execute`).
        let shared = Arc::clone(&server.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.state.lock().expect("first lock cannot be poisoned");
            panic!("poison the serve state");
        })
        .join();
        assert!(server.shared.state.is_poisoned(), "setup must poison");

        // Every entry point keeps working through the poison.
        let stats = server.stats();
        assert_eq!(stats.completed, 0);
        let _ = server.health();
        let (tx, rx) = channel();
        assert_eq!(
            server.submit("after", spec(3), &tx),
            SubmitOutcome::Enqueued
        );
        match drain_terminal(&rx) {
            Response::Result { cached, .. } => assert!(!cached),
            other => panic!("expected result, got {other:?}"),
        }
        server.join();
    }

    #[test]
    fn invalid_spec_is_rejected_with_reason() {
        let server = Server::start(ServeConfig::default());
        let (tx, rx) = channel();
        let bad = JobSpec {
            engine: Engine::Serial,
            ..spec(1)
        };
        assert_eq!(server.submit("x", bad, &tx), SubmitOutcome::Rejected);
        match drain_terminal(&rx) {
            Response::Rejected { reason, .. } => assert!(reason.contains("invalid job")),
            other => panic!("expected rejected, got {other:?}"),
        }
        server.join();
    }

    #[test]
    fn full_queue_applies_backpressure() {
        // No workers consuming: hold the single worker on a job by
        // filling the queue before it can drain. Use queue capacity 2 and
        // distinct seeds so nothing coalesces.
        let server = Server::start(ServeConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 8,
        });
        let (tx, rx) = channel();
        let mut outcomes = Vec::new();
        for i in 0..20 {
            outcomes.push(server.submit(&format!("j{i}"), spec(i as u64), &tx));
        }
        assert!(
            outcomes.contains(&SubmitOutcome::Rejected),
            "20 instant submissions into a 2-slot queue must trip backpressure"
        );
        server.join();
        // Every submission got exactly one terminal response.
        let mut terminals = 0;
        while let Ok(r) = rx.try_recv() {
            if r.terminal() {
                terminals += 1;
            }
        }
        assert_eq!(terminals, 20);
    }

    #[test]
    fn duplicates_in_flight_coalesce_to_one_execution() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (tx, rx) = channel();
        for i in 0..8 {
            server.submit(&format!("dup{i}"), spec(42), &tx);
        }
        server.close();
        server.drain();
        let stats = server.stats();
        assert_eq!(stats.completed, 1, "one cold execution");
        assert_eq!(
            stats.coalesced + stats.cache.hits,
            7,
            "the other 7 answered without recomputing"
        );
        let mut results = Vec::new();
        while let Ok(r) = rx.try_recv() {
            if let Response::Result { artifact, .. } = r {
                results.push(artifact);
            }
        }
        assert_eq!(results.len(), 8);
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "all 8 answers byte-identical"
        );
    }

    #[test]
    fn close_rejects_new_jobs_but_keeps_draining() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (tx, rx) = channel();
        server.submit("before", spec(1), &tx);
        server.close();
        assert_eq!(
            server.submit("after", spec(2), &tx),
            SubmitOutcome::Rejected
        );
        server.drain();
        let mut kinds = Vec::new();
        while let Ok(r) = rx.try_recv() {
            if r.terminal() {
                kinds.push((r.id().to_string(), r.clone()));
            }
        }
        assert!(matches!(
            kinds.iter().find(|(id, _)| id == "before"),
            Some((_, Response::Result { .. }))
        ));
        assert!(matches!(
            kinds.iter().find(|(id, _)| id == "after"),
            Some((_, Response::Rejected { .. }))
        ));
    }

    #[test]
    fn responses_stream_in_lifecycle_order() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (tx, rx) = channel();
        server.submit("life", spec(9), &tx);
        let mut kinds = Vec::new();
        loop {
            let r = rx.recv().unwrap();
            let terminal = r.terminal();
            kinds.push(match r {
                Response::Queued { .. } => "queued",
                Response::Running { .. } => "running",
                Response::Progress { .. } => "progress",
                Response::Result { .. } => "result",
                other => panic!("unexpected {other:?}"),
            });
            if terminal {
                break;
            }
        }
        assert_eq!(kinds.first(), Some(&"queued"));
        assert_eq!(kinds[1], "running");
        assert_eq!(kinds.last(), Some(&"result"));
        assert!(
            kinds.contains(&"progress"),
            "gc phases must stream as progress: {kinds:?}"
        );
        server.join();
    }

    #[test]
    fn windowed_metrics_stay_consistent_with_cumulative_under_manual_clock() {
        let clock = cc_obs::ManualClock::new(1_000_000_000);
        let server = Server::start_with_clock(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            clock.shared(),
        );
        let (tx, rx) = channel();
        // A mixed load: 3 distinct jobs, each duplicated once.
        for i in 0..6u64 {
            server.submit(&format!("j{i}"), spec(i % 3), &tx);
        }
        server.close();
        server.drain();
        for _ in 0..6 {
            drain_terminal(&rx);
        }
        let (exposition, windows) = server.metrics_exposition();
        let stats = server.stats();
        // The 60 s window has seen the entire run (the manual clock never
        // advanced), so every windowed sum must equal its cumulative
        // counter and every windowed digest the cumulative digest —
        // exactly, not approximately.
        let w = windows.window("60s").expect("standard 60 s window");
        for (name, value) in &stats.metrics.counters {
            assert_eq!(
                w.counter(name),
                *value,
                "windowed {name} drifted from cumulative"
            );
        }
        for (name, cumulative) in &stats.metrics.histograms {
            assert_eq!(
                w.histogram(name).expect("windowed twin"),
                cumulative,
                "windowed digest {name} drifted from cumulative"
            );
        }
        assert_eq!(w.counter("serve.jobs_completed"), 3);
        assert_eq!(
            w.counter("serve.cache_hits") + w.counter("serve.coalesced_hits"),
            3
        );
        // Determinism: every reading happened at the scripted instant, so
        // a second snapshot answers identically.
        let (_, again) = server.metrics_exposition();
        assert_eq!(again, windows);
        // The exposition renders the same counters.
        assert!(exposition.contains("serve_jobs_completed_total 3\n"));
        cc_obs::check_exposition(&exposition).expect("exposition must be well-formed");
        server.join();
    }

    #[test]
    fn spans_track_lifecycle_and_embed_in_artifacts() {
        let clock = cc_obs::ManualClock::new(500);
        let server = Server::start_with_clock(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            clock.shared(),
        );
        let (tx, rx) = channel();
        server.submit("cold", spec(11), &tx);
        let artifact = match drain_terminal(&rx) {
            Response::Result { artifact, .. } => artifact,
            other => panic!("expected result, got {other:?}"),
        };
        server.submit("warm", spec(11), &tx);
        drain_terminal(&rx);
        // The artifact embeds the phase marks as a v3 experiment record.
        let parsed = RunArtifact::from_json_str(&artifact).unwrap();
        let span_record = parsed
            .experiments
            .iter()
            .find(|e| e.id == "job-span")
            .expect("job-span record embedded");
        assert_eq!(span_record.headers, vec!["phase", "round"]);
        assert!(
            !span_record.rows.is_empty(),
            "gc-sketch runs named phases: {span_record:?}"
        );
        // The span book recorded both submissions with their outcomes.
        let spans = server.spans_json();
        let recent = spans.get("recent").and_then(Json::as_arr).unwrap();
        let outcome_of = |id: &str| {
            recent
                .iter()
                .find(|s| s.get("id").and_then(Json::as_str) == Some(id))
                .and_then(|s| s.get("outcome").and_then(Json::as_str).map(str::to_string))
        };
        assert_eq!(outcome_of("cold").as_deref(), Some("completed"));
        assert_eq!(outcome_of("warm").as_deref(), Some("served"));
        // The completed span carries the same phase marks as the record.
        let cold = recent
            .iter()
            .find(|s| s.get("id").and_then(Json::as_str) == Some("cold"))
            .unwrap();
        assert_eq!(
            cold.get("phases").and_then(Json::as_arr).unwrap().len(),
            span_record.rows.len()
        );
        server.join();
    }

    #[test]
    fn links_aggregate_matches_the_artifact_comm_fold_exactly() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (tx, rx) = channel();
        server.submit("cold", spec(17), &tx);
        let artifact = match drain_terminal(&rx) {
            Response::Result { artifact, .. } => artifact,
            other => panic!("expected result, got {other:?}"),
        };
        // A cache hit must not re-absorb into the aggregate.
        server.submit("warm", spec(17), &tx);
        drain_terminal(&rx);

        let parsed = RunArtifact::from_json_str(&artifact).unwrap();
        let comm = parsed
            .metrics
            .iter()
            .find(|(name, _)| name == "comm")
            .map(|(_, snap)| snap)
            .expect("artifacts embed the comm snapshot");
        let counter = |name: &str| {
            comm.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("comm snapshot missing {name}"))
        };
        let record = parsed
            .experiments
            .iter()
            .find(|e| e.id == "job-comm")
            .expect("artifacts embed the job-comm record");
        let row = |metric: &str| {
            record
                .rows
                .iter()
                .find(|r| r[0] == metric)
                .map(|r| r[1].clone())
                .unwrap_or_else(|| panic!("job-comm missing {metric}"))
        };
        // The human-readable record and the machine snapshot are two
        // renderings of the same fold.
        assert_eq!(row("words"), counter("comm.words").to_string());
        assert_eq!(
            row("peak_util_milli"),
            counter("comm.peak_util_milli").to_string()
        );

        // One cold execution absorbed exactly once — the live aggregate
        // equals the artifact's fold, field by field (zero drift).
        let links = server.links_json();
        let agg = |name: &str| links.get(name).and_then(Json::as_u64).unwrap();
        assert_eq!(agg("jobs"), 1);
        assert_eq!(agg("rounds"), counter("comm.rounds"));
        assert_eq!(agg("messages"), counter("comm.messages"));
        assert_eq!(agg("words"), counter("comm.words"));
        assert_eq!(agg("link_rounds"), counter("comm.link_rounds"));
        assert_eq!(agg("peak_link_words"), counter("comm.peak_link_words"));
        assert_eq!(agg("peak_util_milli"), counter("comm.peak_util_milli"));
        assert_eq!(agg("headroom_milli"), counter("comm.headroom_milli"));
        assert_eq!(agg("broadcast_words"), counter("comm.broadcast_words"));
        assert_eq!(agg("unicast_words"), counter("comm.unicast_words"));
        // The aggregate histogram is the job's histogram verbatim.
        let hist = comm
            .histograms
            .iter()
            .find(|(k, _)| k == "comm.link_util_milli")
            .map(|(_, h)| h)
            .unwrap();
        assert_eq!(agg("p50_util_milli"), hist.quantile(0.50));
        assert_eq!(agg("p95_util_milli"), hist.quantile(0.95));
        assert_eq!(agg("p99_util_milli"), hist.quantile(0.99));
        server.join();
    }

    #[test]
    fn health_reports_the_pool_shape() {
        let server = Server::start(ServeConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        let (tx, rx) = channel();
        server.submit("h", spec(21), &tx);
        drain_terminal(&rx);
        let health = server.health();
        assert!(health.ok(), "idle pool with live workers is healthy");
        assert_eq!(health.workers, 2);
        assert_eq!(health.workers_alive, 2);
        assert_eq!(health.queue_capacity, 8);
        assert_eq!(health.cache_capacity, 16);
        assert_eq!(health.cache_entries, 1, "the finished job is cached");
        assert!(health.cache_resident_bytes > 0);
        // Closing flips `accepting`, and drained workers exit: the report
        // stops claiming health.
        server.close();
        server.drain();
        for _ in 0..200 {
            if server.health().workers_alive == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let closed = server.health();
        assert!(!closed.accepting);
        assert!(!closed.ok());
        server.join();
    }

    #[test]
    fn stats_lines_and_artifact_parse() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (tx, rx) = channel();
        server.submit("p", spec(3), &tx);
        let artifact = match drain_terminal(&rx) {
            Response::Result { artifact, .. } => artifact,
            other => panic!("expected result, got {other:?}"),
        };
        let parsed = RunArtifact::from_json_str(&artifact).unwrap();
        parsed.validate().unwrap();
        assert!(parsed.queued_unix_nanos <= parsed.started_unix_nanos);
        assert!(parsed.started_unix_nanos <= parsed.finished_unix_nanos);
        assert!(parsed.meta.iter().any(|(k, _)| k == "cache_key"));

        let stats = server.stats();
        let line = Response::Stats(Box::new(stats)).to_line();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("stats"));
        assert!(v.get("cache").is_some());

        // Every response kind emits one parseable line.
        for r in [
            Response::Queued {
                id: "q\"uote".into(),
                queue_depth: 3,
                coalesced: true,
            },
            Response::Rejected {
                id: "x".into(),
                reason: "queue full".into(),
            },
            Response::Running {
                id: "x".into(),
                queue_nanos: 12,
            },
            Response::Progress {
                id: "x".into(),
                phase: "phase1".into(),
                round: 7,
            },
            Response::Result {
                id: "x".into(),
                cached: true,
                artifact: Arc::clone(&artifact),
            },
            Response::Error {
                id: "x".into(),
                error: "boom".into(),
            },
            Response::Metrics {
                exposition: "serve_jobs_completed_total 1\n".into(),
                windows: server.metrics_exposition().1.to_json(),
            },
            Response::Health(Box::new(server.health())),
            Response::Spans(server.spans_json()),
            Response::Links(server.links_json()),
            Response::Closing,
        ] {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            Json::parse(&line).unwrap_or_else(|e| panic!("line {line} unparseable: {e}"));
        }
        server.join();
    }
}

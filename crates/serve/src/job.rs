//! Typed job requests and their execution over the existing engines.
//!
//! A [`JobSpec`] is everything a simulation needs to be reproducible: the
//! graph (explicit edge list or generator + seed), the algorithm, the
//! engine, and the simulator seed. Two specs with equal
//! [`JobSpec::cache_key`]s denote the same computation, which is what
//! lets the serve cache answer repeats in O(1).
//!
//! [`execute`] runs a validated spec on the engine it names — the direct
//! `CliqueNet` simulator for the paper's GC/MST pipelines, or a
//! `cc-runtime` backend for the reactive connectivity port — with an
//! arbitrary [`Tracer`] attached, so the worker pool can stream per-phase
//! progress from the same event stream it later folds into metrics.

use crate::hash::{generated_digest, graph_digest, job_digest, wgraph_digest, Digest};
use cc_core::{exact_mst, gc, run_connectivity, ExactMstConfig};
use cc_graph::{generators, Edge, Graph, WGraph};
use cc_net::NetConfig;
use cc_route::Net;
use cc_runtime::Runtime;
use cc_trace::{CostSnapshot, Json, Tracer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Largest clique size a job may request. Keeps a single request from
/// holding a worker for minutes; raise when the O(n²) memory work of
/// ROADMAP item 4 lands.
pub const MAX_N: usize = 4096;

/// Largest explicit edge list a job may carry.
pub const MAX_EDGES: usize = 1 << 20;

/// Round cap applied to every served run — a wedged protocol must come
/// back as an error, not hold a worker forever.
pub const SERVE_ROUND_CAP: u64 = 500_000;

/// The graph a job runs on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSpec {
    /// An explicit unweighted edge list on `n` nodes.
    Edges {
        /// Node count.
        n: usize,
        /// Undirected edges, any order, duplicates tolerated.
        edges: Vec<(u32, u32)>,
    },
    /// An explicit weighted edge list on `n` nodes.
    WEdges {
        /// Node count.
        n: usize,
        /// Undirected weighted edges, any order, duplicates tolerated.
        edges: Vec<(u32, u32, u64)>,
    },
    /// `generators::random_connected_graph(n, degree_milli/1000/n, seed)`.
    RandomConnected {
        /// Node count.
        n: usize,
        /// Expected average degree × 1000 (kept integral so the cache
        /// key never hashes a float).
        degree_milli: u64,
        /// Generator seed.
        seed: u64,
    },
    /// `generators::complete_wgraph(n, seed)` — the EXACT-MST workload.
    CompleteWeighted {
        /// Node count.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Node count of the graph this spec defines.
    pub fn n(&self) -> usize {
        match *self {
            GraphSpec::Edges { n, .. }
            | GraphSpec::WEdges { n, .. }
            | GraphSpec::RandomConnected { n, .. }
            | GraphSpec::CompleteWeighted { n, .. } => n,
        }
    }

    /// Whether the spec defines a weighted graph.
    pub fn weighted(&self) -> bool {
        matches!(
            self,
            GraphSpec::WEdges { .. } | GraphSpec::CompleteWeighted { .. }
        )
    }

    /// Canonical content digest (see the `hash` module).
    pub fn digest(&self) -> Digest {
        match self {
            GraphSpec::Edges { n, edges } => graph_digest(*n, edges),
            GraphSpec::WEdges { n, edges } => wgraph_digest(*n, edges),
            GraphSpec::RandomConnected {
                n,
                degree_milli,
                seed,
            } => generated_digest("random-connected", *n, &[*degree_milli, *seed]),
            GraphSpec::CompleteWeighted { n, seed } => {
                generated_digest("complete-weighted", *n, &[*seed])
            }
        }
    }

    /// JSON form (`kind`-tagged object).
    pub fn to_json(&self) -> Json {
        match self {
            GraphSpec::Edges { n, edges } => Json::obj(vec![
                ("kind", Json::Str("edges".into())),
                ("n", Json::UInt(*n as u64)),
                (
                    "edges",
                    Json::Arr(
                        edges
                            .iter()
                            .map(|&(u, v)| {
                                Json::Arr(vec![Json::UInt(u as u64), Json::UInt(v as u64)])
                            })
                            .collect(),
                    ),
                ),
            ]),
            GraphSpec::WEdges { n, edges } => Json::obj(vec![
                ("kind", Json::Str("wedges".into())),
                ("n", Json::UInt(*n as u64)),
                (
                    "edges",
                    Json::Arr(
                        edges
                            .iter()
                            .map(|&(u, v, w)| {
                                Json::Arr(vec![
                                    Json::UInt(u as u64),
                                    Json::UInt(v as u64),
                                    Json::UInt(w),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            GraphSpec::RandomConnected {
                n,
                degree_milli,
                seed,
            } => Json::obj(vec![
                ("kind", Json::Str("random-connected".into())),
                ("n", Json::UInt(*n as u64)),
                ("degree_milli", Json::UInt(*degree_milli)),
                ("seed", Json::UInt(*seed)),
            ]),
            GraphSpec::CompleteWeighted { n, seed } => Json::obj(vec![
                ("kind", Json::Str("complete-weighted".into())),
                ("n", Json::UInt(*n as u64)),
                ("seed", Json::UInt(*seed)),
            ]),
        }
    }

    /// Parses the `kind`-tagged object form.
    ///
    /// # Errors
    ///
    /// Names the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<GraphSpec, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("graph: missing `kind`")?;
        let n = v
            .get("n")
            .and_then(Json::as_u64)
            .ok_or("graph: missing `n`")? as usize;
        let u = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("graph: missing u64 field `{name}`"))
        };
        match kind {
            "edges" => {
                let edges = parse_pairs(v, false)?
                    .into_iter()
                    .map(|(a, b, _)| (a, b))
                    .collect();
                Ok(GraphSpec::Edges { n, edges })
            }
            "wedges" => Ok(GraphSpec::WEdges {
                n,
                edges: parse_pairs(v, true)?,
            }),
            "random-connected" => Ok(GraphSpec::RandomConnected {
                n,
                degree_milli: u("degree_milli")?,
                seed: u("seed")?,
            }),
            "complete-weighted" => Ok(GraphSpec::CompleteWeighted {
                n,
                seed: u("seed")?,
            }),
            other => Err(format!("graph: unknown kind `{other}`")),
        }
    }
}

fn parse_pairs(v: &Json, weighted: bool) -> Result<Vec<(u32, u32, u64)>, String> {
    let want = if weighted { 3 } else { 2 };
    v.get("edges")
        .and_then(Json::as_arr)
        .ok_or("graph: missing `edges` array")?
        .iter()
        .map(|e| {
            let parts = e
                .as_arr()
                .filter(|p| p.len() == want)
                .ok_or_else(|| format!("graph: edge is not a {want}-tuple"))?;
            let nums = parts
                .iter()
                .map(|p| p.as_u64().ok_or("graph: non-integer edge entry"))
                .collect::<Result<Vec<_>, _>>()?;
            let endpoint = |x: u64| -> Result<u32, String> {
                u32::try_from(x).map_err(|_| "graph: endpoint exceeds u32".to_string())
            };
            Ok((
                endpoint(nums[0])?,
                endpoint(nums[1])?,
                if weighted { nums[2] } else { 0 },
            ))
        })
        .collect()
}

/// The algorithm a job runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Theorem 4 sketch connectivity (full GC pipeline, direct simulator).
    GcSketch,
    /// Theorem 7 EXACT-MST (direct simulator).
    ExactMst,
    /// Sketch connectivity as a reactive runtime program.
    RtConn,
}

impl Algorithm {
    /// Stable string tag (protocol + cache key).
    pub fn tag(&self) -> &'static str {
        match self {
            Algorithm::GcSketch => "gc-sketch",
            Algorithm::ExactMst => "exact-mst",
            Algorithm::RtConn => "rt-conn",
        }
    }

    /// Parses a tag.
    ///
    /// # Errors
    ///
    /// Lists the valid tags.
    pub fn parse(tag: &str) -> Result<Algorithm, String> {
        match tag {
            "gc-sketch" => Ok(Algorithm::GcSketch),
            "exact-mst" => Ok(Algorithm::ExactMst),
            "rt-conn" => Ok(Algorithm::RtConn),
            other => Err(format!(
                "unknown algorithm `{other}` (expected gc-sketch, exact-mst, or rt-conn)"
            )),
        }
    }
}

/// The engine a job runs on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The direct `CliqueNet` simulator.
    Net,
    /// The serial runtime backend.
    Serial,
    /// The parallel runtime backend.
    Parallel,
}

impl Engine {
    /// Stable string tag (protocol + cache key).
    pub fn tag(&self) -> &'static str {
        match self {
            Engine::Net => "net",
            Engine::Serial => "serial",
            Engine::Parallel => "parallel",
        }
    }

    /// Parses a tag.
    ///
    /// # Errors
    ///
    /// Lists the valid tags.
    pub fn parse(tag: &str) -> Result<Engine, String> {
        match tag {
            "net" => Ok(Engine::Net),
            "serial" => Ok(Engine::Serial),
            "parallel" => Ok(Engine::Parallel),
            other => Err(format!(
                "unknown engine `{other}` (expected net, serial, or parallel)"
            )),
        }
    }
}

/// A fully-specified, reproducible job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The input graph.
    pub graph: GraphSpec,
    /// The algorithm to run on it.
    pub algorithm: Algorithm,
    /// The engine to run it on.
    pub engine: Engine,
    /// Simulator seed (per-node RNG streams, port permutations).
    pub seed: u64,
}

impl JobSpec {
    /// The canonical `(graph-hash, algorithm, engine, seed)` digest the
    /// result cache is keyed by.
    pub fn cache_key(&self) -> Digest {
        job_digest(
            self.graph.digest(),
            self.algorithm.tag(),
            self.engine.tag(),
            self.seed,
        )
    }

    /// Checks the spec is well-formed and names the first problem.
    ///
    /// # Errors
    ///
    /// A one-line description suitable for a `rejected` response.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.graph.n();
        if !(2..=MAX_N).contains(&n) {
            return Err(format!("n = {n} outside supported 2..={MAX_N}"));
        }
        let check_explicit = |m: usize, ends: &mut dyn Iterator<Item = (u32, u32)>| {
            if m > MAX_EDGES {
                return Err(format!("{m} edges exceed the {MAX_EDGES} cap"));
            }
            for (u, v) in ends {
                if u == v {
                    return Err(format!("self-loop at node {u}"));
                }
                if u as usize >= n || v as usize >= n {
                    return Err(format!("edge ({u}, {v}) outside 0..{n}"));
                }
            }
            Ok(())
        };
        match &self.graph {
            GraphSpec::Edges { edges, .. } => {
                check_explicit(edges.len(), &mut edges.iter().copied())?
            }
            GraphSpec::WEdges { edges, .. } => {
                check_explicit(edges.len(), &mut edges.iter().map(|&(u, v, _)| (u, v)))?
            }
            GraphSpec::RandomConnected { .. } | GraphSpec::CompleteWeighted { .. } => {}
        }
        match (self.algorithm, self.graph.weighted()) {
            (Algorithm::ExactMst, false) => {
                return Err("exact-mst needs a weighted graph (wedges or complete-weighted)".into())
            }
            (Algorithm::GcSketch | Algorithm::RtConn, true) => {
                return Err(format!(
                    "{} needs an unweighted graph (edges or random-connected)",
                    self.algorithm.tag()
                ))
            }
            _ => {}
        }
        match (self.algorithm, self.engine) {
            (Algorithm::RtConn, Engine::Net) => {
                Err("rt-conn runs on a runtime engine (serial or parallel)".into())
            }
            (Algorithm::GcSketch | Algorithm::ExactMst, Engine::Serial | Engine::Parallel) => {
                Err(format!(
                    "{} runs on the direct simulator (engine net)",
                    self.algorithm.tag()
                ))
            }
            _ => Ok(()),
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("graph", self.graph.to_json()),
            ("algorithm", Json::Str(self.algorithm.tag().into())),
            ("engine", Json::Str(self.engine.tag().into())),
            ("seed", Json::UInt(self.seed)),
        ])
    }

    /// Parses the object form (does not [`validate`](Self::validate)).
    ///
    /// # Errors
    ///
    /// Names the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let tag = |name: &str| -> Result<&str, String> {
            v.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("job: missing string field `{name}`"))
        };
        Ok(JobSpec {
            graph: GraphSpec::from_json(v.get("graph").ok_or("job: missing `graph`")?)?,
            algorithm: Algorithm::parse(tag("algorithm")?)?,
            engine: Engine::parse(tag("engine")?)?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("job: missing `seed`")?,
        })
    }
}

/// What a finished job hands back to the pool: the human-facing summary
/// rows plus the metered cost (both deterministic per spec).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecOutcome {
    /// `(metric, value)` rows for the artifact's summary table.
    pub summary: Vec<(String, String)>,
    /// Total metered cost of the run.
    pub cost: CostSnapshot,
}

fn built_graphs(spec: &GraphSpec) -> Result<(Option<Graph>, Option<WGraph>), String> {
    match spec {
        GraphSpec::Edges { n, edges } => {
            let mut g = Graph::new(*n);
            for &(u, v) in edges {
                g.add_edge(u as usize, v as usize);
            }
            Ok((Some(g), None))
        }
        GraphSpec::WEdges { n, edges } => {
            let mut g = WGraph::new(*n);
            for &(u, v, w) in edges {
                if let Some(existing) = g.weight_of(u as usize, v as usize) {
                    if existing != w {
                        return Err(format!(
                            "conflicting weights {existing} and {w} for edge ({u}, {v})"
                        ));
                    }
                    continue;
                }
                g.add_edge(u as usize, v as usize, w);
            }
            Ok((None, Some(g)))
        }
        GraphSpec::RandomConnected {
            n,
            degree_milli,
            seed,
        } => {
            let p = (*degree_milli as f64 / 1000.0) / *n as f64;
            let mut rng = ChaCha8Rng::seed_from_u64(*seed);
            Ok((
                Some(generators::random_connected_graph(*n, p, &mut rng)),
                None,
            ))
        }
        GraphSpec::CompleteWeighted { n, seed } => {
            let mut rng = ChaCha8Rng::seed_from_u64(*seed);
            Ok((None, Some(generators::complete_wgraph(*n, &mut rng))))
        }
    }
}

fn cost_snapshot(c: cc_net::Cost) -> CostSnapshot {
    CostSnapshot {
        rounds: c.rounds,
        messages: c.messages,
        words: c.words,
        bits: c.bits,
    }
}

/// Executes a **validated** spec with `tracer` attached to the engine.
///
/// Model-event streams (and therefore everything in the returned
/// [`ExecOutcome`]) are deterministic per spec; only wall-clock varies.
///
/// # Errors
///
/// Graph-construction problems, simulator violations, round-cap overruns,
/// and Monte Carlo sketch exhaustion, rendered as one line.
pub fn execute(spec: &JobSpec, tracer: Box<dyn Tracer>) -> Result<ExecOutcome, String> {
    let n = spec.graph.n();
    let cfg = NetConfig::kt1(n)
        .with_seed(spec.seed)
        .with_round_cap(SERVE_ROUND_CAP);
    let (unweighted, weighted) = built_graphs(&spec.graph)?;
    let mut summary: Vec<(String, String)> = vec![
        ("algorithm".into(), spec.algorithm.tag().into()),
        ("engine".into(), spec.engine.tag().into()),
        ("n".into(), n.to_string()),
        ("seed".into(), spec.seed.to_string()),
    ];
    let cost = match spec.algorithm {
        Algorithm::GcSketch => {
            let g = unweighted.expect("validated: unweighted");
            let mut net = Net::new(cfg);
            net.set_tracer(tracer);
            let out = gc::run_on(&mut net, &g, &gc::GcConfig::default())
                .map_err(|e| format!("gc-sketch: {e}"))?;
            summary.push(("m".into(), g.m().to_string()));
            summary.push(("connected".into(), out.connected.to_string()));
            summary.push(("components".into(), out.component_count.to_string()));
            summary.push(("forest_edges".into(), out.spanning_forest.len().to_string()));
            cost_snapshot(net.cost())
        }
        Algorithm::ExactMst => {
            let g = weighted.expect("validated: weighted");
            let mut net = Net::new(cfg);
            net.set_tracer(tracer);
            let run = exact_mst(&mut net, &g, &ExactMstConfig::default())
                .map_err(|e| format!("exact-mst: {e}"))?;
            summary.push(("m".into(), g.m().to_string()));
            summary.push(("mst_edges".into(), run.mst.len().to_string()));
            summary.push((
                "mst_weight".into(),
                WGraph::total_weight(&run.mst).to_string(),
            ));
            summary.push(("lotker_phases".into(), run.phases.to_string()));
            cost_snapshot(run.cost)
        }
        Algorithm::RtConn => {
            let g = unweighted.expect("validated: unweighted");
            let mut adj = vec![Vec::new(); g.n()];
            for Edge { u, v } in g.edges() {
                adj[u as usize].push(v as usize);
                adj[v as usize].push(u as usize);
            }
            fn run<B: cc_runtime::Backend>(
                tracer: Box<dyn Tracer>,
                mut rt: Runtime<B>,
                adj: &[Vec<usize>],
            ) -> Result<(cc_core::RtGcOutput, cc_net::Cost), String> {
                rt.set_tracer(tracer);
                let out = run_connectivity(&mut rt, adj, None, SERVE_ROUND_CAP)
                    .map_err(|e| format!("rt-conn: {e}"))?;
                Ok((out, rt.cost()))
            }
            let (out, cost) = match spec.engine {
                Engine::Serial => run(tracer, Runtime::serial(cfg), &adj)?,
                Engine::Parallel => run(tracer, Runtime::parallel(cfg), &adj)?,
                Engine::Net => unreachable!("validated: rt-conn never runs on net"),
            };
            summary.push(("m".into(), g.m().to_string()));
            summary.push(("connected".into(), out.connected.to_string()));
            summary.push(("components".into(), out.component_count.to_string()));
            cost_snapshot(cost)
        }
    };
    summary.push(("rounds".into(), cost.rounds.to_string()));
    summary.push(("messages".into(), cost.messages.to_string()));
    summary.push(("words".into(), cost.words.to_string()));
    Ok(ExecOutcome { summary, cost })
}

/// Summary of one WEdge list for tests: `WEdge` is re-exported so callers
/// building explicit weighted specs don't need `cc-graph` directly.
pub use cc_graph::WEdge as WeightedEdge;

#[cfg(test)]
mod tests {
    use super::*;
    use cc_trace::NullTracer;

    fn gc_spec(n: usize, seed: u64) -> JobSpec {
        JobSpec {
            graph: GraphSpec::RandomConnected {
                n,
                degree_milli: 3000,
                seed: 11,
            },
            algorithm: Algorithm::GcSketch,
            engine: Engine::Net,
            seed,
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let specs = vec![
            gc_spec(16, 3),
            JobSpec {
                graph: GraphSpec::Edges {
                    n: 4,
                    edges: vec![(0, 1), (2, 3)],
                },
                algorithm: Algorithm::RtConn,
                engine: Engine::Parallel,
                seed: 9,
            },
            JobSpec {
                graph: GraphSpec::WEdges {
                    n: 3,
                    edges: vec![(0, 1, 5), (1, 2, 2)],
                },
                algorithm: Algorithm::ExactMst,
                engine: Engine::Net,
                seed: 0,
            },
            JobSpec {
                graph: GraphSpec::CompleteWeighted { n: 8, seed: 2 },
                algorithm: Algorithm::ExactMst,
                engine: Engine::Net,
                seed: 1,
            },
        ];
        for spec in specs {
            let parsed = JobSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(parsed, spec);
            parsed.validate().unwrap();
        }
    }

    #[test]
    fn validation_rejects_bad_combinations() {
        let mut bad_engine = gc_spec(16, 1);
        bad_engine.engine = Engine::Serial;
        assert!(bad_engine.validate().unwrap_err().contains("net"));

        let rt_on_net = JobSpec {
            algorithm: Algorithm::RtConn,
            ..gc_spec(16, 1)
        };
        assert!(rt_on_net.validate().unwrap_err().contains("runtime"));

        let mst_unweighted = JobSpec {
            algorithm: Algorithm::ExactMst,
            ..gc_spec(16, 1)
        };
        assert!(mst_unweighted.validate().unwrap_err().contains("weighted"));

        let self_loop = JobSpec {
            graph: GraphSpec::Edges {
                n: 4,
                edges: vec![(1, 1)],
            },
            algorithm: Algorithm::GcSketch,
            engine: Engine::Net,
            seed: 0,
        };
        assert!(self_loop.validate().unwrap_err().contains("self-loop"));

        let oob = JobSpec {
            graph: GraphSpec::Edges {
                n: 4,
                edges: vec![(0, 9)],
            },
            algorithm: Algorithm::GcSketch,
            engine: Engine::Net,
            seed: 0,
        };
        assert!(oob.validate().unwrap_err().contains("outside"));

        let tiny = JobSpec {
            graph: GraphSpec::Edges {
                n: 1,
                edges: vec![],
            },
            algorithm: Algorithm::GcSketch,
            engine: Engine::Net,
            seed: 0,
        };
        assert!(tiny.validate().is_err());
    }

    #[test]
    fn cache_key_separates_spec_dimensions() {
        let base = gc_spec(16, 1);
        assert_eq!(base.cache_key(), gc_spec(16, 1).cache_key());
        assert_ne!(base.cache_key(), gc_spec(16, 2).cache_key());
        assert_ne!(base.cache_key(), gc_spec(32, 1).cache_key());
        let rt = JobSpec {
            algorithm: Algorithm::RtConn,
            engine: Engine::Serial,
            ..gc_spec(16, 1)
        };
        assert_ne!(base.cache_key(), rt.cache_key());
    }

    #[test]
    fn execute_runs_all_three_algorithms_deterministically() {
        let specs = [
            gc_spec(16, 5),
            JobSpec {
                graph: GraphSpec::CompleteWeighted { n: 8, seed: 3 },
                algorithm: Algorithm::ExactMst,
                engine: Engine::Net,
                seed: 4,
            },
            JobSpec {
                graph: GraphSpec::RandomConnected {
                    n: 16,
                    degree_milli: 4000,
                    seed: 6,
                },
                algorithm: Algorithm::RtConn,
                engine: Engine::Serial,
                seed: 7,
            },
        ];
        for spec in &specs {
            spec.validate().unwrap();
            let a = execute(spec, Box::new(NullTracer)).unwrap();
            let b = execute(spec, Box::new(NullTracer)).unwrap();
            assert_eq!(a, b, "outcome must be deterministic per spec");
            assert!(a.cost.rounds > 0);
            assert!(a
                .summary
                .iter()
                .any(|(k, v)| k == "algorithm" && v == spec.algorithm.tag()));
        }
    }

    #[test]
    fn execute_reports_conflicting_duplicate_weights() {
        let spec = JobSpec {
            graph: GraphSpec::WEdges {
                n: 3,
                edges: vec![(0, 1, 5), (1, 0, 6)],
            },
            algorithm: Algorithm::ExactMst,
            engine: Engine::Net,
            seed: 0,
        };
        spec.validate().unwrap();
        let err = execute(&spec, Box::new(NullTracer)).unwrap_err();
        assert!(err.contains("conflicting weights"), "{err}");
    }
}

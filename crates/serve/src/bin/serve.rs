//! The `serve` daemon: line-delimited JSON over stdin/stdout (default)
//! or a localhost TCP listener.
//!
//! ```text
//! serve [--workers N] [--queue N] [--cache N] [--tcp ADDR]
//! ```
//!
//! In stdio mode the session is the server's lifetime: EOF (or a
//! `shutdown` op) stops admissions, drains in-flight jobs, flushes every
//! response, and exits. In TCP mode each connection is a session over
//! the shared server; a `shutdown` op from any connection stops the
//! daemon after draining.

use cc_serve::pool::{ServeConfig, Server};
use cc_serve::server::run_session;
use cc_trace::Json;
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Options {
    cfg: ServeConfig,
    tcp: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--workers N] [--queue N] [--cache N] [--tcp ADDR]\n\
         \n\
         Speaks line-delimited JSON: {{\"op\":\"submit\",\"id\":...,\"job\":...}},\n\
         {{\"op\":\"stats\"}}, {{\"op\":\"metrics\"}}, {{\"op\":\"health\"}}, {{\"op\":\"spans\"}},\n\
         {{\"op\":\"shutdown\"}}. Default transport is stdin/stdout;\n\
         --tcp 127.0.0.1:PORT serves connections instead."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut cfg = ServeConfig::default();
    let mut tcp = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .filter(|&v: &usize| v > 0)
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a positive integer");
                    usage()
                })
        };
        match arg.as_str() {
            "--workers" => cfg.workers = num("--workers"),
            "--queue" => cfg.queue_capacity = num("--queue"),
            "--cache" => cfg.cache_capacity = num("--cache"),
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    Options { cfg, tcp }
}

fn serve_stdio(server: &Server) -> std::io::Result<()> {
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout();
    run_session(server, stdin, stdout, true)?;
    Ok(())
}

fn serve_tcp(server: Arc<Server>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    eprintln!("serve: listening on {local}");
    let closing = Arc::new(AtomicBool::new(false));
    let mut sessions = Vec::new();
    for stream in listener.incoming() {
        if closing.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let server = Arc::clone(&server);
        let closing = Arc::clone(&closing);
        sessions.push(std::thread::spawn(move || {
            let reader = BufReader::new(stream.try_clone().expect("clone tcp stream"));
            let _ = run_session(&server, reader, stream, false);
            if !server.stats().accepting {
                // A shutdown op arrived on this session: wake the accept
                // loop with a no-op connection so the daemon can exit.
                closing.store(true, Ordering::SeqCst);
                if let Ok(mut s) = std::net::TcpStream::connect(local) {
                    let _ = s.write_all(b"\n");
                }
            }
        }));
    }
    for s in sessions {
        let _ = s.join();
    }
    Ok(())
}

/// One structured log line on stderr (stdout is the protocol stream).
fn log_line(kind: &str, mut fields: Vec<(&str, Json)>) {
    let mut obj = vec![("kind", Json::Str(kind.to_string()))];
    obj.append(&mut fields);
    eprintln!("{}", Json::obj(obj).emit());
}

fn main() {
    let opts = parse_args();
    let listen = opts
        .tcp
        .as_ref()
        .map_or("stdio".to_string(), |addr| format!("tcp:{addr}"));
    log_line(
        "serve-start",
        vec![
            ("version", Json::Str(env!("CARGO_PKG_VERSION").to_string())),
            ("workers", Json::UInt(opts.cfg.workers as u64)),
            ("queue_capacity", Json::UInt(opts.cfg.queue_capacity as u64)),
            ("cache_capacity", Json::UInt(opts.cfg.cache_capacity as u64)),
            ("listen", Json::Str(listen.clone())),
        ],
    );
    let server = Server::start(opts.cfg);
    let (result, stats) = match &opts.tcp {
        None => {
            let r = serve_stdio(&server);
            let stats = server.stats();
            server.join();
            (r, stats)
        }
        Some(addr) => {
            let server = Arc::new(server);
            let r = serve_tcp(Arc::clone(&server), addr);
            let stats = server.stats();
            if let Ok(s) = Arc::try_unwrap(server) {
                s.join();
            }
            (r, stats)
        }
    };
    log_line(
        "serve-stop",
        vec![
            ("listen", Json::Str(listen)),
            ("submitted", Json::UInt(stats.submitted)),
            ("completed", Json::UInt(stats.completed)),
            ("failed", Json::UInt(stats.failed)),
            ("rejected", Json::UInt(stats.rejected)),
        ],
    );
    if let Err(e) = result {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}

//! The bounded LRU result cache.
//!
//! Values are the sealed artifact documents jobs produce, stored as
//! `Arc<str>` so a hit clones a pointer, never the bytes — which is also
//! what makes the serving guarantee cheap to keep: a cache hit returns
//! the *byte-identical* document the cold run produced.
//!
//! The implementation is a `HashMap` keyed by [`Digest`] plus a
//! `BTreeMap` recency index over a logical clock: `get` re-stamps the
//! entry, `insert` evicts the least-recently-used entry when full. Both
//! are `O(log capacity)` and fully deterministic — no wall clock, no
//! hasher randomness in the eviction order.

use crate::hash::Digest;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Monotonic counters describing cache traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that did not.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Bytes of artifact text currently resident.
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    value: Arc<str>,
    stamp: u64,
}

/// A bounded least-recently-used map from job digests to sealed artifact
/// documents.
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<Digest, Entry>,
    recency: BTreeMap<u64, Digest>,
    clock: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a cacheless server should skip the
    /// cache, not thrash an empty one.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ResultCache {
            capacity,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, counting a hit or miss and re-stamping recency.
    pub fn get(&mut self, key: &Digest) -> Option<Arc<str>> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.recency.remove(&entry.stamp);
                entry.stamp = self.clock;
                self.recency.insert(entry.stamp, *key);
                self.stats.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: Digest, value: Arc<str>) {
        self.clock += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.recency.remove(&old.stamp);
            self.stats.resident_bytes -= old.value.len() as u64;
        } else if self.entries.len() >= self.capacity {
            // Evict the smallest stamp = least recently touched.
            let (&stamp, &victim) = self.recency.iter().next().expect("full cache has entries");
            self.recency.remove(&stamp);
            let gone = self.entries.remove(&victim).expect("recency in sync");
            self.stats.resident_bytes -= gone.value.len() as u64;
            self.stats.evictions += 1;
        }
        self.stats.resident_bytes += value.len() as u64;
        self.stats.insertions += 1;
        self.recency.insert(self.clock, key);
        self.entries.insert(
            key,
            Entry {
                value,
                stamp: self.clock,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u128) -> Digest {
        Digest(i)
    }

    fn val(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hits_return_the_inserted_pointer() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), val("artifact-1"));
        let got = c.get(&key(1)).unwrap();
        assert_eq!(&*got, "artifact-1");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().resident_bytes, 10);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), val("a"));
        c.insert(key(2), val("b"));
        // Touch 1 so 2 is the LRU victim.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), val("c"));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&key(2)).is_none(), "2 was evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), val("a"));
        c.insert(key(2), val("bb"));
        c.insert(key(1), val("aaa"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(&*c.get(&key(1)).unwrap(), "aaa");
        assert_eq!(c.stats().resident_bytes, 5);
    }

    #[test]
    fn stays_bounded_under_churn() {
        let mut c = ResultCache::new(8);
        for i in 0..1000u128 {
            c.insert(key(i), val("x"));
            assert!(c.len() <= 8);
        }
        assert_eq!(c.stats().evictions, 1000 - 8);
        assert_eq!(c.stats().resident_bytes, 8);
        // The 8 most recent survive.
        for i in 992..1000u128 {
            assert!(c.get(&key(i)).is_some(), "recent key {i} resident");
        }
    }

    #[test]
    fn hit_rate_tracks_traffic() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), val("a"));
        for _ in 0..9 {
            c.get(&key(1));
        }
        c.get(&key(2));
        assert!((c.stats().hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = ResultCache::new(0);
    }
}

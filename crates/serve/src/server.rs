//! The wire protocol: line-delimited JSON requests in, line-delimited
//! JSON responses out.
//!
//! One request per line. Seven operations:
//!
//! ```json
//! {"op":"submit","id":"job-1","job":{"graph":{"kind":"random-connected","n":64,"degree_milli":3000,"seed":7},"algorithm":"gc-sketch","engine":"net","seed":1}}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"health"}
//! {"op":"spans"}
//! {"op":"links"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses are the [`Response`](crate::pool::Response) lines documented
//! in [`crate::pool`]: a submission streams `queued` → `running` →
//! `progress`… → `result` (or terminates early with `rejected` /
//! `error`); `stats` answers with one `stats` line; `shutdown` answers
//! `closing`, stops admissions, and drains in-flight jobs before the
//! session ends. Responses from concurrent jobs interleave; the `id`
//! field ties each line to its submission.
//!
//! [`run_session`] multiplexes one reader over a shared [`Server`]: all
//! responses funnel through a single writer thread so concurrent jobs
//! never tear each other's lines.

use crate::job::JobSpec;
use crate::pool::{Response, Server};
use cc_trace::Json;
use std::io::{BufRead, Write};
use std::sync::mpsc::{channel, Sender};

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job under a client-chosen id.
    Submit {
        /// Client-chosen id echoed in every response for this job.
        id: String,
        /// The job to run.
        job: JobSpec,
    },
    /// Ask for a statistics snapshot.
    Stats,
    /// Ask for the Prometheus-style exposition plus windowed metrics.
    Metrics,
    /// Ask for a health report.
    Health,
    /// Ask for live and recent job spans.
    Spans,
    /// Ask for the live communication aggregate (link utilization,
    /// headroom, broadcast/unicast mix) over every cold job.
    Links,
    /// Stop admissions and drain.
    Shutdown,
}

/// Every op the protocol accepts, for error messages and docs.
pub const VALID_OPS: &[&str] = &[
    "submit", "stats", "metrics", "health", "spans", "links", "shutdown",
];

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    match op {
        "submit" => {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or("submit needs a string `id`")?
                .to_string();
            if id.is_empty() {
                return Err("submit `id` must be non-empty".into());
            }
            let job = v.get("job").ok_or("submit needs a `job` object")?;
            let job = JobSpec::from_json(job)?;
            Ok(Request::Submit { id, job })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "health" => Ok(Request::Health),
        "spans" => Ok(Request::Spans),
        "links" => Ok(Request::Links),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op {other:?} (valid ops: {})",
            VALID_OPS.join(", ")
        )),
    }
}

/// Runs one protocol session: reads request lines from `reader` until EOF
/// (or a `shutdown` op), writes every response as one line on `writer`.
///
/// When `close_on_end` is set, reaching EOF closes the server and drains
/// outstanding jobs before the session returns — the semantics of the
/// stdio daemon, where the session *is* the server's lifetime. A TCP
/// handler shares the server across sessions and passes `false`.
///
/// Returns the writer (all responses flushed) so in-process callers can
/// inspect the bytes.
pub fn run_session<R: BufRead, W: Write + Send + 'static>(
    server: &Server,
    reader: R,
    writer: W,
    close_on_end: bool,
) -> std::io::Result<W> {
    let (tx, rx) = channel::<Response>();
    let writer_thread = std::thread::spawn(move || -> std::io::Result<W> {
        let mut w = writer;
        for response in rx {
            writeln!(w, "{}", response.to_line())?;
            w.flush()?;
        }
        Ok(w)
    });

    let mut saw_shutdown = false;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(Request::Submit { id, job }) => {
                server.submit(&id, job, &tx);
            }
            Ok(Request::Stats) => {
                let _ = tx.send(Response::Stats(Box::new(server.stats())));
            }
            Ok(Request::Metrics) => {
                let (exposition, windows) = server.metrics_exposition();
                let _ = tx.send(Response::Metrics {
                    exposition,
                    windows: windows.to_json(),
                });
            }
            Ok(Request::Health) => {
                let _ = tx.send(Response::Health(Box::new(server.health())));
            }
            Ok(Request::Spans) => {
                let _ = tx.send(Response::Spans(server.spans_json()));
            }
            Ok(Request::Links) => {
                let _ = tx.send(Response::Links(server.links_json()));
            }
            Ok(Request::Shutdown) => {
                server.close();
                let _ = tx.send(Response::Closing);
                saw_shutdown = true;
                break;
            }
            Err(error) => {
                let _ = tx.send(Response::Error {
                    id: request_id_of(&line),
                    error,
                });
            }
        }
        // Alert transitions go to stderr as structured log lines, never
        // into the protocol stream: clients keep a fixed response
        // grammar, operators still see every firing/resolution.
        for event in server.take_alert_events() {
            eprintln!("{}", event.to_json().emit());
        }
    }
    if close_on_end || saw_shutdown {
        server.close();
        server.drain();
    } else {
        // Jobs submitted on this session must still answer on it.
        server.drain();
    }
    // All job-held senders are gone after drain; dropping ours ends the
    // writer thread once the last queued response is flushed.
    for event in server.take_alert_events() {
        eprintln!("{}", event.to_json().emit());
    }
    drop(tx);
    writer_thread
        .join()
        .map_err(|_| std::io::Error::other("response writer panicked"))?
}

/// Best-effort id extraction for error responses to unparseable or
/// invalid request lines.
fn request_id_of(line: &str) -> String {
    Json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default()
}

/// Convenience for in-process clients (tests, loadgen): a sender wrapper
/// that tags submissions with sequential ids.
#[derive(Clone)]
pub struct Client {
    tx: Sender<Response>,
}

impl Client {
    /// A client delivering responses to `tx`.
    pub fn new(tx: Sender<Response>) -> Client {
        Client { tx }
    }

    /// Submits `job` as `id`, streaming responses to this client's channel.
    pub fn submit(&self, server: &Server, id: &str, job: JobSpec) -> crate::pool::SubmitOutcome {
        server.submit(id, job, &self.tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Algorithm, Engine, GraphSpec};
    use crate::pool::ServeConfig;
    use std::io::Cursor;

    fn submit_line(id: &str, seed: u64) -> String {
        let job = JobSpec {
            graph: GraphSpec::RandomConnected {
                n: 16,
                degree_milli: 3000,
                seed: 5,
            },
            algorithm: Algorithm::GcSketch,
            engine: Engine::Net,
            seed,
        };
        format!(
            "{{\"op\":\"submit\",\"id\":{},\"job\":{}}}",
            Json::Str(id.into()).emit(),
            job.to_json().emit()
        )
    }

    fn run_lines(lines: &[String]) -> Vec<Json> {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let input = lines.join("\n");
        let out = run_session(&server, Cursor::new(input), Vec::new(), true).unwrap();
        server.join();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response line {l}: {e}")))
            .collect()
    }

    fn kinds_for<'a>(responses: &'a [Json], id: &str) -> Vec<&'a str> {
        responses
            .iter()
            .filter(|r| r.get("id").and_then(Json::as_str) == Some(id))
            .map(|r| r.get("kind").and_then(Json::as_str).unwrap())
            .collect()
    }

    #[test]
    fn parse_request_covers_all_ops() {
        assert_eq!(parse_request("{\"op\":\"stats\"}"), Ok(Request::Stats));
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}"),
            Ok(Request::Shutdown)
        );
        assert!(matches!(
            parse_request(&submit_line("a", 1)),
            Ok(Request::Submit { .. })
        ));
        assert_eq!(parse_request("{\"op\":\"metrics\"}"), Ok(Request::Metrics));
        assert_eq!(parse_request("{\"op\":\"health\"}"), Ok(Request::Health));
        assert_eq!(parse_request("{\"op\":\"spans\"}"), Ok(Request::Spans));
        assert_eq!(parse_request("{\"op\":\"links\"}"), Ok(Request::Links));
        assert!(parse_request("{\"op\":\"dance\"}").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"submit\",\"id\":\"\"}").is_err());
    }

    #[test]
    fn unknown_op_error_lists_the_valid_ops() {
        let err = parse_request("{\"op\":\"dance\"}").unwrap_err();
        assert!(err.contains("\"dance\""), "names the offender: {err}");
        for op in VALID_OPS {
            assert!(err.contains(op), "error must list {op}: {err}");
        }
    }

    #[test]
    fn metrics_health_and_spans_answer_inline() {
        let responses = run_lines(&[
            submit_line("m", 4),
            "{\"op\":\"metrics\"}".to_string(),
            "{\"op\":\"health\"}".to_string(),
            "{\"op\":\"spans\"}".to_string(),
            "{\"op\":\"links\"}".to_string(),
        ]);
        let by_kind = |kind: &str| {
            responses
                .iter()
                .find(|r| r.get("kind").and_then(Json::as_str) == Some(kind))
                .unwrap_or_else(|| panic!("no {kind} response"))
        };
        // The exposition inside the metrics answer is well-formed and
        // carries serve.* series (requests are handled in order, so the
        // submitted job has already been counted at least as a miss).
        let metrics = by_kind("metrics");
        let exposition = metrics
            .get("exposition")
            .and_then(Json::as_str)
            .expect("metrics carries exposition text");
        cc_obs::check_exposition(exposition).expect("well-formed exposition");
        assert!(exposition.contains("serve_cache_misses_total"));
        let windows = metrics.get("windows").expect("windowed snapshot");
        let parsed = cc_obs::WindowedSnapshot::from_json(windows).unwrap();
        assert_eq!(parsed.windows.len(), 3, "1s/10s/60s standard windows");
        // Health round-trips and reports a healthy single-session pool.
        let health = by_kind("health");
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
        let report = cc_obs::HealthReport::from_json(health).unwrap();
        assert!(report.ok());
        assert_eq!(report.workers, 1);
        // The spans answer lists the submitted job (live or finished,
        // depending on worker timing).
        let spans = by_kind("spans");
        let all: Vec<&Json> = spans
            .get("live")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .chain(spans.get("recent").and_then(Json::as_arr).unwrap())
            .collect();
        assert!(
            all.iter()
                .any(|s| s.get("id").and_then(Json::as_str) == Some("m")),
            "span for job m present: {spans:?}"
        );
        // The links answer carries the aggregate shape (the job may or
        // may not have finished when it was taken — both are valid).
        let links = by_kind("links");
        let jobs = links.get("jobs").and_then(Json::as_u64).unwrap();
        let words = links.get("words").and_then(Json::as_u64).unwrap();
        assert!(jobs <= 1);
        assert!(links.get("headroom_milli").and_then(Json::as_u64).is_some());
        if jobs == 0 {
            assert_eq!(words, 0, "an empty aggregate carries no traffic");
        } else {
            assert!(words > 0, "a folded gc-sketch run moved words");
        }
    }

    #[test]
    fn session_streams_lifecycle_and_result() {
        let responses = run_lines(&[submit_line("one", 1)]);
        let kinds = kinds_for(&responses, "one");
        assert_eq!(kinds.first(), Some(&"queued"));
        assert_eq!(kinds.last(), Some(&"result"));
        let result = responses
            .iter()
            .find(|r| r.get("kind").and_then(Json::as_str) == Some("result"))
            .unwrap();
        let artifact = result.get("artifact").unwrap();
        assert_eq!(
            artifact.get("schema_version").and_then(Json::as_u64),
            Some(cc_trace::SCHEMA_VERSION)
        );
    }

    #[test]
    fn duplicate_submissions_answer_identically() {
        let responses = run_lines(&[
            submit_line("a", 7),
            submit_line("b", 7),
            submit_line("c", 7),
        ]);
        let artifacts: Vec<String> = responses
            .iter()
            .filter(|r| r.get("kind").and_then(Json::as_str) == Some("result"))
            .map(|r| r.get("artifact").unwrap().emit())
            .collect();
        assert_eq!(artifacts.len(), 3);
        assert!(artifacts.windows(2).all(|w| w[0] == w[1]));
        let cached: Vec<bool> = responses
            .iter()
            .filter(|r| r.get("kind").and_then(Json::as_str) == Some("result"))
            .map(|r| r.get("cached").and_then(Json::as_bool).unwrap())
            .collect();
        assert_eq!(cached.iter().filter(|&&c| c).count(), 2, "two duplicates");
    }

    #[test]
    fn bad_lines_answer_error_with_request_id() {
        let responses = run_lines(&[
            "{\"op\":\"submit\",\"id\":\"oops\"}".to_string(),
            "garbage".to_string(),
        ]);
        assert_eq!(kinds_for(&responses, "oops"), vec!["error"]);
        assert_eq!(kinds_for(&responses, ""), vec!["error"]);
    }

    #[test]
    fn stats_and_shutdown_answer_inline() {
        let responses = run_lines(&[
            submit_line("s", 2),
            "{\"op\":\"stats\"}".to_string(),
            "{\"op\":\"shutdown\"}".to_string(),
            // After shutdown the session stops reading; this line is
            // never processed and must not panic anything.
            submit_line("late", 3),
        ]);
        let kinds: Vec<&str> = responses
            .iter()
            .map(|r| r.get("kind").and_then(Json::as_str).unwrap())
            .collect();
        assert!(kinds.contains(&"stats"));
        assert!(kinds.contains(&"closing"));
        assert!(kinds_for(&responses, "late").is_empty());
        // The pre-shutdown job still completed during drain.
        assert_eq!(kinds_for(&responses, "s").last(), Some(&"result"));
    }
}

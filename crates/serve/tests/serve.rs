//! End-to-end serve tests: hash canonicalization properties, worker-pool
//! shutdown semantics under load, in-flight capacity, and the duplicate
//! cache-hit guarantee.
//!
//! The load-shaped tests gate at runtime like `tests/stress.rs`: they run
//! in release builds (CI's smoke check) and skip in debug unless
//! `CC_STRESS=1`.

use cc_serve::hash::{graph_digest, mix64, wgraph_digest};
use cc_serve::job::{Algorithm, Engine, GraphSpec, JobSpec};
use cc_serve::pool::{Response, ServeConfig, Server, SubmitOutcome};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::mpsc::channel;

/// Same predicate as `tests/stress.rs`: debug builds skip unless
/// `CC_STRESS=1`; release builds always run.
fn skip_stress(debug_build: bool, cc_stress: Option<&str>) -> bool {
    debug_build && cc_stress.is_none_or(|v| v.trim() != "1")
}

macro_rules! stress_gate {
    () => {
        let var = std::env::var("CC_STRESS").ok();
        if skip_stress(cfg!(debug_assertions), var.as_deref()) {
            eprintln!(
                "skipping serve stress test in debug build (set CC_STRESS=1 or use --release)"
            );
            return;
        }
    };
}

/// Deterministic permutation of `items` keyed on `seed` (sort by a hash
/// of the index — a seeded shuffle without any RNG dependency).
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut keyed: Vec<(u64, &T)> = items
        .iter()
        .enumerate()
        .map(|(i, e)| (mix64(seed ^ i as u64), e))
        .collect();
    keyed.sort_by_key(|&(k, _)| k);
    keyed.into_iter().map(|(_, e)| e.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The canonical graph digest is invariant under edge permutation,
    /// endpoint flips, and duplicate edges — the property the result
    /// cache's correctness rests on.
    #[test]
    fn graph_digest_is_canonical(
        edges in proptest::collection::vec((0u32..32, 0u32..32), 1..48),
        seed in any::<u64>(),
        dup_stride in 1usize..5,
    ) {
        let n = 32;
        let base = graph_digest(n, &edges);

        // Permute the list.
        prop_assert_eq!(base, graph_digest(n, &shuffled(&edges, seed)));

        // Flip endpoint order of every edge.
        let flipped: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (v, u)).collect();
        prop_assert_eq!(base, graph_digest(n, &flipped));

        // Duplicate every `dup_stride`-th edge (flipped, for spice) and
        // shuffle again.
        let mut dup = edges.clone();
        dup.extend(edges.iter().step_by(dup_stride).map(|&(u, v)| (v, u)));
        prop_assert_eq!(base, graph_digest(n, &shuffled(&dup, seed ^ 1)));
    }

    /// Distinct canonical edge sets get distinct digests (no accidental
    /// cancellation), and `n` is part of the identity.
    #[test]
    fn graph_digest_separates(
        edges in proptest::collection::vec((0u32..32, 0u32..32), 1..48),
        extra in (0u32..32, 32u32..40),
    ) {
        let n = 48;
        let base = graph_digest(n, &edges);
        // `extra` has an endpoint ≥ 32, so it is never already present.
        let mut more = edges.clone();
        more.push(extra);
        prop_assert_ne!(base, graph_digest(n, &more));
        prop_assert_ne!(base, graph_digest(n + 1, &edges));
    }

    /// The weighted digest has the same invariances, with weights part of
    /// the identity.
    #[test]
    fn wgraph_digest_is_canonical(
        edges in proptest::collection::vec((0u32..24, 0u32..24, 1u64..100), 1..32),
        seed in any::<u64>(),
    ) {
        let n = 24;
        let base = wgraph_digest(n, &edges);
        prop_assert_eq!(base, wgraph_digest(n, &shuffled(&edges, seed)));
        let flipped: Vec<(u32, u32, u64)> =
            edges.iter().map(|&(u, v, w)| (v, u, w)).collect();
        prop_assert_eq!(base, wgraph_digest(n, &flipped));
        // Bump one weight out of its generated range: different graph.
        let mut bumped = edges.clone();
        bumped[0].2 += 1000;
        prop_assert_ne!(base, wgraph_digest(n, &bumped));
    }
}

fn gc_job(n: usize, graph_seed: u64, run_seed: u64) -> JobSpec {
    JobSpec {
        graph: GraphSpec::RandomConnected {
            n,
            degree_milli: 3000,
            seed: graph_seed,
        },
        algorithm: Algorithm::GcSketch,
        engine: Engine::Net,
        seed: run_seed,
    }
}

fn mst_job(n: usize, graph_seed: u64, run_seed: u64) -> JobSpec {
    JobSpec {
        graph: GraphSpec::CompleteWeighted {
            n,
            seed: graph_seed,
        },
        algorithm: Algorithm::ExactMst,
        engine: Engine::Net,
        seed: run_seed,
    }
}

fn rt_job(n: usize, graph_seed: u64, run_seed: u64) -> JobSpec {
    JobSpec {
        graph: GraphSpec::RandomConnected {
            n,
            degree_milli: 3000,
            seed: graph_seed,
        },
        algorithm: Algorithm::RtConn,
        engine: Engine::Serial,
        seed: run_seed,
    }
}

/// Shutdown with a non-empty queue: every accepted job completes and
/// answers; submissions after close are rejected; nothing is dropped.
#[test]
fn shutdown_drains_queue_without_dropping_responses() {
    stress_gate!();
    let server = Server::start(ServeConfig {
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 256,
    });
    let (tx, rx) = channel();
    // A mixed backlog across all three algorithms, all distinct keys.
    let mut accepted = 0u64;
    for i in 0..60u64 {
        let job = match i % 3 {
            0 => gc_job(24, i, 1),
            1 => mst_job(12, i, 1),
            _ => rt_job(16, i, 1),
        };
        match server.submit(&format!("pre-{i}"), job, &tx) {
            SubmitOutcome::Enqueued | SubmitOutcome::Coalesced | SubmitOutcome::CacheHit => {
                accepted += 1
            }
            SubmitOutcome::Rejected => panic!("queue sized to accept the whole backlog"),
        }
    }
    // Close while the queue is (almost surely) non-empty, then verify
    // admissions stop but the backlog drains.
    server.close();
    let closed_with_backlog = server.stats().queue_depth > 0;
    for i in 0..8u64 {
        assert_eq!(
            server.submit(&format!("post-{i}"), gc_job(24, 1000 + i, 1), &tx),
            SubmitOutcome::Rejected,
            "a closed server must reject new work"
        );
    }
    server.join();

    let mut terminal: HashMap<String, &'static str> = HashMap::new();
    while let Ok(r) = rx.try_recv() {
        let kind = match &r {
            Response::Result { .. } => "result",
            Response::Rejected { .. } => "rejected",
            Response::Error { .. } => "error",
            _ => continue,
        };
        let prev = terminal.insert(r.id().to_string(), kind);
        assert!(prev.is_none(), "two terminal responses for {}", r.id());
    }
    assert_eq!(terminal.len() as u64, accepted + 8, "no response dropped");
    for i in 0..60u64 {
        assert_eq!(
            terminal.get(&format!("pre-{i}")),
            Some(&"result"),
            "accepted job pre-{i} must complete despite shutdown"
        );
    }
    for i in 0..8u64 {
        assert_eq!(terminal.get(&format!("post-{i}")), Some(&"rejected"));
    }
    // Whether the close actually raced a non-empty queue varies with
    // worker speed; log it rather than assert it.
    eprintln!("closed with backlog: {closed_with_backlog}");
}

/// The pool holds ≥64 concurrently in-flight jobs (queued + running)
/// within its bounded queue — the serving capacity the design specifies.
#[test]
fn holds_64_in_flight_jobs_with_bounded_queue() {
    stress_gate!();
    let cfg = ServeConfig {
        workers: 2,
        queue_capacity: 128,
        cache_capacity: 256,
    };
    let server = Server::start(cfg);
    let (tx, rx) = channel();
    let mut enqueued = 0u64;
    let mut max_depth = 0u64;
    for i in 0..64u64 {
        match server.submit(&format!("cap-{i}"), gc_job(20, i, 1), &tx) {
            SubmitOutcome::Enqueued => enqueued += 1,
            // A fast worker may finish an early job before we finish
            // submitting; that's still 64 admitted without rejection.
            SubmitOutcome::CacheHit | SubmitOutcome::Coalesced => {}
            SubmitOutcome::Rejected => panic!("64 concurrent jobs must fit"),
        }
        max_depth = max_depth.max(server.stats().queue_depth);
    }
    assert!(enqueued >= 62, "the submissions are all distinct keys");
    assert!(
        max_depth <= cfg.queue_capacity as u64,
        "queue depth {max_depth} must respect the bound"
    );
    server.close();
    server.drain();
    let mut results = 0;
    while let Ok(r) = rx.try_recv() {
        if matches!(r, Response::Result { .. }) {
            results += 1;
        }
    }
    assert_eq!(results, 64, "every admitted job answers");
    server.join();
}

/// A duplicate-heavy mix: ≥90% of submissions answer from the cache or a
/// coalesced execution, and every answer for a key is byte-identical.
#[test]
fn duplicate_mix_hits_at_least_90_percent() {
    stress_gate!();
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 64,
    });
    let (tx, rx) = channel();
    // 100 submissions over 8 distinct jobs → 92 duplicates. Interleave so
    // duplicates arrive both while the original is in flight (coalesce)
    // and after it finished (cache hit).
    for round in 0..25u64 {
        for k in 0..4u64 {
            let distinct = (round * 4 + k) % 8;
            server.submit(&format!("mix-{round}-{k}"), gc_job(20, distinct, 1), &tx);
        }
    }
    server.close();
    server.drain();

    let stats = server.stats();
    assert_eq!(stats.completed, 8, "exactly one cold run per distinct job");
    assert!(
        stats.duplicate_hit_rate() >= 0.90,
        "hit rate {:.3} below the 90% bar (hits={} coalesced={} misses={})",
        stats.duplicate_hit_rate(),
        stats.cache.hits,
        stats.coalesced,
        stats.cache.misses
    );

    // Byte-identity: group artifacts by cache key (in the meta) and
    // check each group is uniform.
    let mut by_key: HashMap<String, Vec<String>> = HashMap::new();
    let mut results = 0;
    while let Ok(r) = rx.try_recv() {
        if let Response::Result { artifact, .. } = r {
            results += 1;
            let parsed = cc_trace::RunArtifact::from_json_str(&artifact).unwrap();
            let key = parsed
                .meta
                .iter()
                .find(|(k, _)| k == "cache_key")
                .map(|(_, v)| v.clone())
                .expect("artifacts carry their cache key");
            by_key.entry(key).or_default().push(artifact.to_string());
        }
    }
    assert_eq!(results, 100, "every submission answered with a result");
    assert_eq!(by_key.len(), 8);
    for (key, artifacts) in by_key {
        assert!(
            artifacts.windows(2).all(|w| w[0] == w[1]),
            "answers for {key} must be byte-identical"
        );
    }
    server.join();
}

/// Ungated smoke so debug `cargo test` still exercises the pool
/// end-to-end at a tiny size.
#[test]
fn small_mix_smoke() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 16,
        cache_capacity: 16,
    });
    let (tx, rx) = channel();
    for i in 0..6u64 {
        server.submit(&format!("s{i}"), gc_job(12, i % 2, 1), &tx);
    }
    server.close();
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed, 2);
    assert!(stats.duplicate_hit_rate() >= 0.5);
    let mut results = 0;
    while let Ok(r) = rx.try_recv() {
        if matches!(r, Response::Result { .. }) {
            results += 1;
        }
    }
    assert_eq!(results, 6);
    server.join();
}

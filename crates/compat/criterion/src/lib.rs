//! Offline compatibility shim for the subset of `criterion` 0.5 this
//! workspace uses.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain wall-clock harness: each
//! benchmark is auto-calibrated to a small time budget, run `sample_size`
//! times, and reported as the median ns/iter on stdout. No plots, no
//! statistics beyond min/median, no baseline files — enough to compare
//! alternatives in one run, which is how the workspace's benches are used.
//!
//! In test mode (`cargo test` passes `--test` to harness-less bench
//! binaries) every benchmark body runs exactly once so CI verifies the
//! benches still work without paying for measurement.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the measured closure.
pub struct Bencher<'a> {
    mode: Mode,
    samples: usize,
    /// Collected median, for the group to report.
    result: &'a mut Option<Duration>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Measure,
    TestOnce,
}

impl Bencher<'_> {
    /// Measures `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::TestOnce {
            black_box(routine());
            return;
        }
        // Calibrate: find an iteration count that takes ≥ ~2ms.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break elapsed / iters as u32;
            }
            iters *= 4;
        };
        // Sample: `samples` timed batches, keep the median.
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(start.elapsed() / iters as u32);
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let _ = per_iter;
        *self.result = Some(median);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    mode: Mode,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            samples: self.samples,
            result: &mut result,
        };
        f(&mut b, input);
        self.report(&id.to_string(), result);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            samples: self.samples,
            result: &mut result,
        };
        f(&mut b);
        self.report(&id.to_string(), result);
        self
    }

    fn report(&self, id: &str, result: Option<Duration>) {
        match (self.mode, result) {
            (Mode::TestOnce, _) => println!("test {}/{} ... ok (ran once)", self.name, id),
            (Mode::Measure, Some(t)) => {
                println!(
                    "{}/{:<24} time: [{:>12.2} ns/iter]",
                    self.name,
                    id,
                    t.as_nanos() as f64
                )
            }
            (Mode::Measure, None) => println!("{}/{} ... no measurement", self.name, id),
        }
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: 20,
            mode: Mode::Measure,
        }
    }
}

impl Criterion {
    /// Overrides the default sample count for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Applies command-line flags (`--test` switches to run-once mode; all
    /// other flags, e.g. `--bench` and filters, are accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.mode = Mode::TestOnce;
        }
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        let mode = self.mode;
        BenchmarkGroup {
            name: name.into(),
            samples,
            mode,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }

    /// Final reporting hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(4096).to_string(), "4096");
    }

    #[test]
    fn measure_reports_a_median() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim-self-test");
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        group.finish();
        assert!(ran > 0, "the routine must actually run");
    }
}

//! Offline compatibility shim for the subset of `proptest` 1.x this
//! workspace uses.
//!
//! Supports the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header, `arg in
//! strategy` bindings over integer ranges, `any::<T>()`, tuples of
//! strategies, and `proptest::collection::vec`, plus the `prop_assert!`,
//! `prop_assert_eq!`, and `prop_assume!` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs' debug representation and a per-test
//! deterministic case number, which is enough to reproduce (generation is
//! seeded from the test name, so failures replay exactly).

#![forbid(unsafe_code)]

/// Test-runner types: configuration and case outcomes.
pub mod test_runner {
    /// Run configuration. Only `cases` is honored by the shim;
    /// `max_shrink_iters` exists so `..ProptestConfig::default()` struct
    /// updates (the real-proptest idiom) stay meaningful.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Shrink-iteration cap (accepted, not honored: the shim replays
        /// the failing input directly instead of shrinking).
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim trims to keep the
            // full workspace suite fast on small CI machines while still
            // exploring a meaningful sample.
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic per-test generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for `(test name, case index)` — stable across runs.
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let v = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            v % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// `any::<T>()` — the full-range strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, lo..hi)`: vectors of `lo..hi` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` lives at the crate root in real proptest's prelude.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

/// The standard imports.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `proptest! { #[test] fn p(x in 0..10usize) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` inside a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $arg = ($strat).generate(&mut rng);)+
                let debug_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        continue;
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case} failed: {msg}\n  inputs: {inputs}",
                            case = case,
                            msg = msg,
                            inputs = debug_inputs,
                        );
                    }
                }
            }
            assert!(
                rejected < config.cases,
                "proptest: every generated case was rejected by prop_assume!"
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -4i64..4) {
            prop_assert!(x >= 3 && x < 17);
            prop_assert!(y >= -4 && y < 4);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_any(pair in (0usize..10, 0usize..10), z in any::<u64>()) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            let _ = z;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(x in 0u32..100) {
            prop_assume!(x != 1);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy as _;
        use crate::test_runner::TestRng;
        let strat = 0u64..1000;
        let a: Vec<u64> = (0..10)
            .map(|c| strat.generate(&mut TestRng::deterministic("t", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| strat.generate(&mut TestRng::deterministic("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}

//! Offline compatibility shim for `rand_chacha` 0.3.
//!
//! Implements the real ChaCha block function (D. J. Bernstein) with a
//! configurable double-round count and exposes [`ChaCha8Rng`],
//! [`ChaCha12Rng`], and [`ChaCha20Rng`] with the `rand` shim's
//! [`RngCore`]/[`SeedableRng`] traits. Streams are deterministic per seed
//! but not bit-identical to upstream `rand_chacha` (which nothing in this
//! workspace relies on).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha keystream generator with `DR` double-rounds per block.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DR: usize> {
    /// Key + counter state words (constants re-derived per block).
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

/// ChaCha with 8 rounds (4 double-rounds): the simulator's default RNG.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DR: usize> ChaChaRng<DR> {
    /// "expand 32-byte k" — the standard ChaCha constants.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // nonce
        state[15] = 0;
        let input = state;
        for _ in 0..DR {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl<const DR: usize> RngCore for ChaChaRng<DR> {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<const DR: usize> SeedableRng for ChaChaRng<DR> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaRng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chacha20_matches_rfc7539_first_block() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 000000090000004a00000000. Our nonce/counter layout differs (we use
        // a 64-bit counter and zero nonce), so instead verify the raw block
        // function on the RFC's full state by driving quarter_round
        // directly.
        let mut state: [u32; 16] = [
            0x61707865, 0x3320646e, 0x79622d32, 0x6b206574, 0x03020100, 0x07060504, 0x0b0a0908,
            0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c, 0x00000001, 0x09000000,
            0x4a000000, 0x00000000,
        ];
        let input = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(input.iter()) {
            *s = s.wrapping_add(*i);
        }
        assert_eq!(state[0], 0xe4e7f110);
        assert_eq!(state[15], 0x4e3c50a2);
    }

    #[test]
    fn works_with_rng_extension_methods() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: u64 = rng.gen();
        let y = rng.gen_range(0usize..10);
        let b = rng.gen_bool(0.5);
        let _ = (x, y, b);
        assert!(y < 10);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Offline compatibility shim for the subset of `rand` 0.8 this workspace
//! uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors a minimal implementation of the APIs it actually
//! calls: [`RngCore`], [`SeedableRng`] (including the SplitMix64-based
//! [`SeedableRng::seed_from_u64`]), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The shim is *API*-compatible, not *stream*-compatible: seeded runs are
//! fully deterministic and stable within this repository, but the exact
//! random streams differ from the upstream crates. Nothing in this
//! workspace depends on upstream streams — all tests fix their own seeds.

#![forbid(unsafe_code)]

/// Core of every random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step — used to expand a `u64` seed into full seed material,
/// mirroring what `rand_core` does for `seed_from_u64`.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into seed material via SplitMix64 and builds the
    /// generator. Deterministic: same input, same generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

mod uniform {
    use super::RngCore;

    /// Integer types that [`super::Rng::gen_range`] can sample uniformly.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform draw from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as u128).wrapping_sub(low as u128) as u128;
                    // Rejection sampling over the top 64/128 bits keeps the
                    // draw unbiased without widening every type separately.
                    let zone = u128::MAX - (u128::MAX - span + 1) % span;
                    loop {
                        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                        if v <= zone {
                            return low.wrapping_add((v % span) as $t);
                        }
                    }
                }
            }
        )*};
    }
    impl_sample_uniform!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_uniform_signed {
        ($($t:ty as $u:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128;
                    let zone = u128::MAX - (u128::MAX - span + 1) % span;
                    loop {
                        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                        if v <= zone {
                            return (low as i128 + (v % span) as i128) as $t;
                        }
                    }
                }
            }
        )*};
    }
    impl_sample_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);
}

pub use uniform::SampleUniform;

/// Distributions, in the `rand::distributions` shape.
pub mod distributions {
    use super::RngCore;

    /// Types a distribution can produce.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "any value of the type" distribution behind `Rng::gen`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Uniform draw from a half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_half_open(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let v: f64 = self.gen();
        v < p
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related randomness, in the `rand::seq` shape.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Per-machine-pair bandwidth accounting — the k-machine cost rule.
//!
//! One logical round of an `n`-node protocol moves some set of `(src,
//! dst, words)` sends. Under a [`Mapping`](crate::Mapping) those sends
//! fold onto ordered machine pairs; each pair carries at most the spec's
//! bandwidth per *machine round*, messages between co-located nodes are
//! free, and word-granular fragmentation across machine rounds is
//! allowed (the standard accounting of the k-machine literature). The
//! number of machine rounds one logical round costs is therefore
//!
//! ```text
//! max(1, max over ordered machine pairs ⌈pair words / bandwidth⌉)
//! ```
//!
//! — at `k = n` every pair carries one logical link whose admission
//! already caps it at the bandwidth, so every logical round costs
//! exactly one machine round and the clique numbers are recovered; at
//! `k = 1` everything is local and likewise one machine round per
//! logical round. In between, machine rounds measure how badly an
//! algorithm's traffic pattern congests the narrower machine graph.
//!
//! [`MachineLedger`] is that rule as code. It is deliberately the *only*
//! implementation: `cc-runtime`'s `KMachineBackend` feeds it live per
//! round, and `cc-bench`'s grid runner feeds it from recorded
//! `MessageBatch` trace events — tests assert the two agree.

use crate::{ModelError, ModelSpec};

/// Cumulative k-machine accounting totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Logical rounds folded so far.
    pub logical_rounds: u64,
    /// Machine rounds those logical rounds cost (≥ `logical_rounds`).
    pub machine_rounds: u64,
    /// Words that stayed inside a machine (free under the mapping).
    pub local_words: u64,
    /// Words that crossed machine pairs.
    pub remote_words: u64,
    /// Largest single-round load on any ordered machine pair, in words.
    pub max_pair_words: u64,
}

/// Folds `(src, dst, words)` sends into [`MachineStats`] under one spec.
#[derive(Clone, Debug)]
pub struct MachineLedger {
    n: usize,
    k: usize,
    bandwidth: u64,
    spec: ModelSpec,
    /// Ordered machine-pair loads for the current logical round,
    /// `k × k` row-major; the diagonal stays zero (local traffic).
    loads: Vec<u64>,
    /// Indices of touched entries (sparse reset, like
    /// `cc_net::LinkUse`).
    touched: Vec<usize>,
    stats: MachineStats,
}

impl MachineLedger {
    /// A ledger for an `n`-node clique under `spec`.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelSpec::validate_for`].
    pub fn new(n: usize, spec: &ModelSpec) -> Result<Self, ModelError> {
        spec.validate_for(n)?;
        let k = spec.machines(n);
        Ok(MachineLedger {
            n,
            k,
            bandwidth: spec.bandwidth_words_per_link,
            spec: *spec,
            loads: vec![0; k * k],
            touched: Vec::new(),
            stats: MachineStats::default(),
        })
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.k
    }

    /// Records one logical send of `words` words.
    pub fn record(&mut self, src: usize, dst: usize, words: u64) {
        let (ms, md) = (
            self.spec.machine_of(self.n, src),
            self.spec.machine_of(self.n, dst),
        );
        if ms == md {
            self.stats.local_words += words;
            return;
        }
        self.stats.remote_words += words;
        let slot = ms * self.k + md;
        if self.loads[slot] == 0 {
            self.touched.push(slot);
        }
        self.loads[slot] += words;
    }

    /// Closes the current logical round; returns the machine rounds it
    /// cost (≥ 1: a round happens even if nothing crossed machines).
    pub fn end_round(&mut self) -> u64 {
        let mut needed = 1u64;
        for slot in self.touched.drain(..) {
            let load = std::mem::take(&mut self.loads[slot]);
            self.stats.max_pair_words = self.stats.max_pair_words.max(load);
            needed = needed.max(load.div_ceil(self.bandwidth));
        }
        self.stats.logical_rounds += 1;
        self.stats.machine_rounds += needed;
        needed
    }

    /// The cumulative totals so far.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_k(bw: u64, k: usize) -> ModelSpec {
        ModelSpec::clique().with_bandwidth(bw).kmachine(k)
    }

    #[test]
    fn local_traffic_is_free() {
        // n = 8 on 2 machines: 0..4 and 4..8.
        let mut led = MachineLedger::new(8, &spec_k(4, 2)).unwrap();
        led.record(0, 3, 100);
        led.record(5, 7, 50);
        assert_eq!(led.end_round(), 1, "local-only round costs one");
        let s = led.stats();
        assert_eq!((s.local_words, s.remote_words), (150, 0));
        assert_eq!((s.logical_rounds, s.machine_rounds), (1, 1));
    }

    #[test]
    fn pair_load_sets_the_round_count() {
        let mut led = MachineLedger::new(8, &spec_k(4, 2)).unwrap();
        // 0→4 and 1→5 share the ordered pair (0, 1): 9 words / bw 4 → 3
        // machine rounds. The reverse pair carries 4 words → 1 round.
        led.record(0, 4, 5);
        led.record(1, 5, 4);
        led.record(6, 2, 4);
        assert_eq!(led.end_round(), 3);
        let s = led.stats();
        assert_eq!(s.remote_words, 13);
        assert_eq!(s.max_pair_words, 9);
        assert_eq!(s.machine_rounds, 3);
    }

    #[test]
    fn k_equals_n_recovers_the_clique() {
        // At k = n every pair is one logical link; admission caps each
        // link at the bandwidth, so every round costs exactly 1.
        let mut led = MachineLedger::new(4, &spec_k(8, 4)).unwrap();
        for r in 0..5 {
            led.record(0, 1, 8);
            led.record(2, 3, 8);
            assert_eq!(led.end_round(), 1, "round {r}");
        }
        let s = led.stats();
        assert_eq!(s.machine_rounds, s.logical_rounds);
        assert_eq!(s.local_words, 0);
    }

    #[test]
    fn k_equals_one_is_all_local() {
        let mut led = MachineLedger::new(6, &spec_k(2, 1)).unwrap();
        for src in 0..6 {
            for dst in 0..6 {
                if src != dst {
                    led.record(src, dst, 2);
                }
            }
        }
        assert_eq!(led.end_round(), 1);
        let s = led.stats();
        assert_eq!(s.remote_words, 0);
        assert_eq!(s.machine_rounds, 1);
    }

    #[test]
    fn one_to_one_matches_k_equals_n() {
        let one = ModelSpec::clique().with_bandwidth(3);
        let mut led = MachineLedger::new(5, &one).unwrap();
        assert_eq!(led.machines(), 5);
        led.record(0, 4, 3);
        assert_eq!(led.end_round(), 1);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(MachineLedger::new(4, &spec_k(2, 5)).is_err());
        assert!(MachineLedger::new(1, &ModelSpec::clique()).is_err());
    }

    #[test]
    fn empty_rounds_still_cost_one() {
        let mut led = MachineLedger::new(8, &spec_k(4, 2)).unwrap();
        led.end_round();
        led.end_round();
        assert_eq!(led.stats().machine_rounds, 2);
        assert_eq!(led.stats().logical_rounds, 2);
    }
}

//! `cc-model`: the communication model as a first-class value.
//!
//! The paper's algorithms assume the full Congested Clique — every
//! ordered pair of nodes shares a private `O(log n)`-bit link, every
//! node is its own machine. Jurdziński–Nowicki (arXiv:1703.02743) and
//! Robinson (arXiv:2210.02638) study what survives when that model is
//! *limited*: narrower links, broadcast-only sends, or `n` logical nodes
//! multiplexed onto `k` physical machines. This crate reifies those
//! three axes as data so one engine can cover the whole landscape:
//!
//! * [`ModelSpec`] — `{ bandwidth_words_per_link, link_mode, mapping }`,
//!   validated at construction. `cc-net` derives its send rules from a
//!   spec (admission, metering, and `Outbox` legality are checked
//!   against it), and `cc-runtime`'s `KMachineBackend` derives its
//!   machine-pair capacity from the same spec.
//! * [`LinkMode`] — [`Unicast`](LinkMode::Unicast) (the standard model)
//!   vs [`BroadcastOnly`](LinkMode::BroadcastOnly) (footnote 1 of the
//!   paper: a node sends one message on *all* links or nothing).
//! * [`Mapping`] — [`OneToOne`](Mapping::OneToOne) (the clique proper)
//!   vs [`KMachine(k)`](Mapping::KMachine): logical node `v` lives on
//!   machine `⌊v·k/n⌋` (balanced contiguous blocks), messages between
//!   co-located nodes are free, and each ordered machine pair carries at
//!   most the spec's bandwidth per machine round.
//! * [`MachineLedger`] — the per-machine-pair bandwidth accounting rule,
//!   shared verbatim by the live `KMachineBackend` and the post-hoc
//!   trace fold in `cc-bench`'s grid runner, so the two can be asserted
//!   equal instead of merely believed equal.
//!
//! Logical semantics never depend on the mapping: programs, RNG streams,
//! fault decisions, inboxes, and metered cost are functions of the
//! *logical* round and link alone. The mapping only changes how many
//! *machine rounds* a logical round costs — that is the quantity the
//! model grid measures as the model tightens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;

pub use accounting::{MachineLedger, MachineStats};

use std::error::Error;
use std::fmt;

/// Default per-link bandwidth, in words per round — the explicit
/// constant behind the model's "`O(log n)` bits per link" (mirrored by
/// `cc_net::DEFAULT_LINK_WORDS`).
pub const DEFAULT_BANDWIDTH_WORDS: u64 = 8;

/// Whether a node may address links individually or must broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkMode {
    /// The standard model: a different message on every link.
    Unicast,
    /// Footnote 1 of the paper: the *same* message on all `n − 1` links,
    /// or nothing. Point-to-point sends are model violations.
    BroadcastOnly,
}

impl LinkMode {
    /// Short key used in grid cell names: `uni` / `bc`.
    pub fn key(self) -> &'static str {
        match self {
            LinkMode::Unicast => "uni",
            LinkMode::BroadcastOnly => "bc",
        }
    }
}

/// How logical nodes map onto simulated machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mapping {
    /// Every node is its own machine — the Congested Clique proper.
    OneToOne,
    /// `n` logical nodes multiplexed onto `k` machines in balanced
    /// contiguous blocks: node `v` lives on machine `⌊v·k/n⌋`.
    KMachine(usize),
}

impl Mapping {
    /// Number of machines hosting an `n`-node clique.
    pub fn machines(self, n: usize) -> usize {
        match self {
            Mapping::OneToOne => n,
            Mapping::KMachine(k) => k,
        }
    }

    /// The machine hosting logical node `v` (balanced contiguous
    /// blocks; identity under [`Mapping::OneToOne`]).
    pub fn machine_of(self, n: usize, v: usize) -> usize {
        debug_assert!(v < n, "node {v} outside the {n}-clique");
        match self {
            Mapping::OneToOne => v,
            Mapping::KMachine(k) => v * k / n,
        }
    }

    /// Short key used in grid cell names: `1to1` / `k4`.
    pub fn key(self) -> String {
        match self {
            Mapping::OneToOne => "1to1".to_string(),
            Mapping::KMachine(k) => format!("k{k}"),
        }
    }
}

/// A rejected [`ModelSpec`] (or a spec incompatible with a clique size).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A link must carry at least one word per round.
    ZeroBandwidth,
    /// `KMachine(0)` — there is nowhere to put the nodes.
    NoMachines,
    /// `KMachine(k)` with `k > n`: a machine may host several logical
    /// nodes, never fractions of one.
    MoreMachinesThanNodes {
        /// Requested machine count.
        k: usize,
        /// Clique size.
        n: usize,
    },
    /// A clique needs at least 2 nodes.
    CliqueTooSmall {
        /// Offending size.
        n: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroBandwidth => {
                write!(f, "a link must carry at least one word per round")
            }
            ModelError::NoMachines => write!(f, "k-machine mapping needs at least one machine"),
            ModelError::MoreMachinesThanNodes { k, n } => {
                write!(f, "{k} machines cannot each host a node of a {n}-clique")
            }
            ModelError::CliqueTooSmall { n } => {
                write!(f, "a clique needs at least 2 nodes, got {n}")
            }
        }
    }
}

impl Error for ModelError {}

/// One point of the model grid: bandwidth × link mode × mapping.
///
/// The defaults ([`ModelSpec::clique`]) are exactly the paper's model;
/// every other point is a *limited variant* in the sense of
/// arXiv:1703.02743.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModelSpec {
    /// Words each (logical or machine) link may carry per round.
    pub bandwidth_words_per_link: u64,
    /// Unicast vs broadcast-only sends.
    pub link_mode: LinkMode,
    /// Node-to-machine mapping.
    pub mapping: Mapping,
}

impl ModelSpec {
    /// A validated spec.
    ///
    /// # Errors
    ///
    /// [`ModelError::ZeroBandwidth`] if `bandwidth == 0`;
    /// [`ModelError::NoMachines`] for `KMachine(0)`. (Compatibility with
    /// a concrete clique size is checked by [`validate_for`].)
    ///
    /// [`validate_for`]: ModelSpec::validate_for
    pub fn new(bandwidth: u64, link_mode: LinkMode, mapping: Mapping) -> Result<Self, ModelError> {
        if bandwidth == 0 {
            return Err(ModelError::ZeroBandwidth);
        }
        if mapping == Mapping::KMachine(0) {
            return Err(ModelError::NoMachines);
        }
        Ok(ModelSpec {
            bandwidth_words_per_link: bandwidth,
            link_mode,
            mapping,
        })
    }

    /// The paper's model: [`DEFAULT_BANDWIDTH_WORDS`], unicast, one node
    /// per machine.
    pub fn clique() -> Self {
        ModelSpec {
            bandwidth_words_per_link: DEFAULT_BANDWIDTH_WORDS,
            link_mode: LinkMode::Unicast,
            mapping: Mapping::OneToOne,
        }
    }

    /// The same spec with a different bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    #[must_use]
    pub fn with_bandwidth(mut self, words: u64) -> Self {
        assert!(words >= 1, "a link must carry at least one word per round");
        self.bandwidth_words_per_link = words;
        self
    }

    /// The same spec restricted to broadcast-only sends.
    #[must_use]
    pub fn broadcast_only(mut self) -> Self {
        self.link_mode = LinkMode::BroadcastOnly;
        self
    }

    /// The same spec multiplexed onto `k` machines.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn kmachine(mut self, k: usize) -> Self {
        assert!(k >= 1, "k-machine mapping needs at least one machine");
        self.mapping = Mapping::KMachine(k);
        self
    }

    /// Checks the spec against a concrete clique size.
    ///
    /// # Errors
    ///
    /// [`ModelError::CliqueTooSmall`] if `n < 2`;
    /// [`ModelError::MoreMachinesThanNodes`] if the mapping names more
    /// machines than nodes.
    pub fn validate_for(&self, n: usize) -> Result<(), ModelError> {
        if n < 2 {
            return Err(ModelError::CliqueTooSmall { n });
        }
        if let Mapping::KMachine(k) = self.mapping {
            if k == 0 {
                return Err(ModelError::NoMachines);
            }
            if k > n {
                return Err(ModelError::MoreMachinesThanNodes { k, n });
            }
        }
        if self.bandwidth_words_per_link == 0 {
            return Err(ModelError::ZeroBandwidth);
        }
        Ok(())
    }

    /// Whether point-to-point sends are legal under this spec.
    pub fn allows_unicast(&self) -> bool {
        self.link_mode == LinkMode::Unicast
    }

    /// Number of machines hosting an `n`-node clique.
    pub fn machines(&self, n: usize) -> usize {
        self.mapping.machines(n)
    }

    /// The machine hosting logical node `v`.
    pub fn machine_of(&self, n: usize, v: usize) -> usize {
        self.mapping.machine_of(n, v)
    }

    /// Whether a logical `src → dst` message stays inside one machine
    /// (and therefore consumes no link bandwidth).
    pub fn is_local(&self, n: usize, src: usize, dst: usize) -> bool {
        self.machine_of(n, src) == self.machine_of(n, dst)
    }

    /// The grid cell name: `bw<B>-<uni|bc>-<1to1|kK>` — used as the
    /// `backend` column of `grid-*` baseline cases and in artifacts.
    pub fn cell_key(&self) -> String {
        format!(
            "bw{}-{}-{}",
            self.bandwidth_words_per_link,
            self.link_mode.key(),
            self.mapping.key()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ModelSpec::new(8, LinkMode::Unicast, Mapping::OneToOne).is_ok());
        assert_eq!(
            ModelSpec::new(0, LinkMode::Unicast, Mapping::OneToOne),
            Err(ModelError::ZeroBandwidth)
        );
        assert_eq!(
            ModelSpec::new(8, LinkMode::Unicast, Mapping::KMachine(0)),
            Err(ModelError::NoMachines)
        );
    }

    #[test]
    fn validate_for_checks_the_clique_size() {
        let spec = ModelSpec::clique().kmachine(4);
        assert!(spec.validate_for(4).is_ok());
        assert!(spec.validate_for(16).is_ok());
        assert_eq!(
            spec.validate_for(3),
            Err(ModelError::MoreMachinesThanNodes { k: 4, n: 3 })
        );
        assert_eq!(
            ModelSpec::clique().validate_for(1),
            Err(ModelError::CliqueTooSmall { n: 1 })
        );
    }

    #[test]
    fn mapping_is_balanced_contiguous_blocks() {
        let m = Mapping::KMachine(4);
        let assigned: Vec<usize> = (0..8).map(|v| m.machine_of(8, v)).collect();
        assert_eq!(assigned, [0, 0, 1, 1, 2, 2, 3, 3]);
        // Uneven split: block sizes differ by at most one and blocks are
        // contiguous and non-decreasing.
        let m = Mapping::KMachine(3);
        let assigned: Vec<usize> = (0..10).map(|v| m.machine_of(10, v)).collect();
        let mut sizes = [0usize; 3];
        for (i, &a) in assigned.iter().enumerate() {
            sizes[a] += 1;
            if i > 0 {
                assert!(assigned[i - 1] <= a, "blocks must be contiguous");
            }
        }
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Endpoints: k = n is the identity, k = 1 is all-on-one.
        for v in 0..10 {
            assert_eq!(Mapping::KMachine(10).machine_of(10, v), v);
            assert_eq!(Mapping::OneToOne.machine_of(10, v), v);
            assert_eq!(Mapping::KMachine(1).machine_of(10, v), 0);
        }
    }

    #[test]
    fn locality_follows_the_mapping() {
        let spec = ModelSpec::clique().kmachine(2);
        assert!(spec.is_local(8, 0, 3));
        assert!(spec.is_local(8, 4, 7));
        assert!(!spec.is_local(8, 3, 4));
        assert!(!ModelSpec::clique().is_local(8, 0, 1));
    }

    #[test]
    fn cell_keys_are_stable() {
        assert_eq!(ModelSpec::clique().cell_key(), "bw8-uni-1to1");
        assert_eq!(
            ModelSpec::clique()
                .with_bandwidth(2)
                .broadcast_only()
                .kmachine(4)
                .cell_key(),
            "bw2-bc-k4"
        );
    }

    #[test]
    fn errors_display() {
        for e in [
            ModelError::ZeroBandwidth,
            ModelError::NoMachines,
            ModelError::MoreMachinesThanNodes { k: 9, n: 4 },
            ModelError::CliqueTooSmall { n: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Plain-text graph serialization.
//!
//! A tiny, dependency-free edge-list format so experiment instances can be
//! dumped, diffed and reloaded:
//!
//! ```text
//! # optional comments
//! n <vertex-count>
//! e <u> <v>            # unweighted edge
//! w <u> <v> <weight>   # weighted edge
//! ```
//!
//! Parsing is strict: unknown directives, bad arity, out-of-range
//! endpoints and duplicate edges are errors with line numbers.

use crate::graph::{Graph, WGraph};
use std::fmt::Write as _;

/// A parse error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseGraphError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseGraphError {}

/// Serializes an unweighted graph.
pub fn write_graph(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.n());
    for e in g.edges() {
        let _ = writeln!(out, "e {} {}", e.u, e.v);
    }
    out
}

/// Serializes a weighted graph.
pub fn write_wgraph(g: &WGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.n());
    for e in g.edges() {
        let _ = writeln!(out, "w {} {} {}", e.u, e.v, e.w);
    }
    out
}

/// Edge list as parsed: `(u, v, weight)` with `weight = None` for `e` lines.
type ParsedEdges = Vec<(usize, usize, Option<u64>)>;

fn parse_lines(text: &str) -> Result<(usize, ParsedEdges), ParseGraphError> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |reason: &str| ParseGraphError {
            line: lineno,
            reason: reason.to_string(),
        };
        match parts.next() {
            Some("n") => {
                if n.is_some() {
                    return Err(err("duplicate 'n' directive"));
                }
                let v = parts
                    .next()
                    .ok_or_else(|| err("'n' needs a count"))?
                    .parse::<usize>()
                    .map_err(|_| err("invalid vertex count"))?;
                if parts.next().is_some() {
                    return Err(err("'n' takes exactly one argument"));
                }
                n = Some(v);
            }
            Some(dir @ ("e" | "w")) => {
                let n = n.ok_or_else(|| err("edge before 'n' directive"))?;
                let u = parts
                    .next()
                    .ok_or_else(|| err("missing endpoint"))?
                    .parse::<usize>()
                    .map_err(|_| err("invalid endpoint"))?;
                let v = parts
                    .next()
                    .ok_or_else(|| err("missing endpoint"))?
                    .parse::<usize>()
                    .map_err(|_| err("invalid endpoint"))?;
                if u >= n || v >= n {
                    return Err(err("endpoint out of range"));
                }
                if u == v {
                    return Err(err("self-loop"));
                }
                let w = if dir == "w" {
                    Some(
                        parts
                            .next()
                            .ok_or_else(|| err("'w' needs a weight"))?
                            .parse::<u64>()
                            .map_err(|_| err("invalid weight"))?,
                    )
                } else {
                    None
                };
                if parts.next().is_some() {
                    return Err(err("trailing tokens"));
                }
                edges.push((u, v, w));
            }
            Some(other) => {
                return Err(ParseGraphError {
                    line: lineno,
                    reason: format!("unknown directive '{other}'"),
                })
            }
            None => unreachable!("non-empty line has a token"),
        }
    }
    let n = n.ok_or(ParseGraphError {
        line: 0,
        reason: "missing 'n' directive".into(),
    })?;
    Ok((n, edges))
}

/// Parses an unweighted graph (`w` lines are accepted, weights dropped).
///
/// # Errors
///
/// Returns a [`ParseGraphError`] with the offending line for malformed
/// input or duplicate edges.
pub fn read_graph(text: &str) -> Result<Graph, ParseGraphError> {
    let (n, edges) = parse_lines(text)?;
    let mut g = Graph::new(n);
    for (u, v, _) in edges {
        if !g.add_edge(u, v) {
            return Err(ParseGraphError {
                line: 0,
                reason: format!("duplicate edge {{{u},{v}}}"),
            });
        }
    }
    Ok(g)
}

/// Parses a weighted graph (`e` lines get weight 0).
///
/// # Errors
///
/// Returns a [`ParseGraphError`] with the offending line for malformed
/// input or duplicate edges.
pub fn read_wgraph(text: &str) -> Result<WGraph, ParseGraphError> {
    let (n, edges) = parse_lines(text)?;
    let mut g = WGraph::new(n);
    for (u, v, w) in edges {
        if !g.add_edge(u, v, w.unwrap_or(0)) {
            return Err(ParseGraphError {
                line: 0,
                reason: format!("duplicate edge {{{u},{v}}}"),
            });
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn roundtrip_unweighted() {
        let g = generators::circulant(10, &[1, 3]);
        let text = write_graph(&g);
        let back = read_graph(&text).unwrap();
        assert_eq!(back.edges(), g.edges());
        assert_eq!(back.n(), g.n());
    }

    #[test]
    fn roundtrip_weighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::gnp_weighted(12, 0.4, 1000, &mut rng);
        let back = read_wgraph(&write_wgraph(&g)).unwrap();
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = read_graph("# header\n\nn 3\n# middle\ne 0 1\n").unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn error_reporting_is_precise() {
        let cases = [
            ("e 0 1\n", "edge before 'n'"),
            ("n 3\nq 0 1\n", "unknown directive"),
            ("n 3\ne 0 5\n", "out of range"),
            ("n 3\ne 1 1\n", "self-loop"),
            ("n 3\nw 0 1\n", "needs a weight"),
            ("n 3\nn 4\n", "duplicate 'n'"),
            ("n 3\ne 0 1 9\n", "trailing tokens"),
            ("", "missing 'n'"),
        ];
        for (text, expect) in cases {
            let err = read_graph(text).unwrap_err();
            assert!(
                err.reason.contains(expect),
                "{text:?}: got {:?}, wanted {expect:?}",
                err.reason
            );
        }
    }

    #[test]
    fn duplicate_edges_rejected() {
        let err = read_graph("n 3\ne 0 1\ne 1 0\n").unwrap_err();
        assert!(err.reason.contains("duplicate edge"));
    }

    #[test]
    fn display_includes_line() {
        let err = read_graph("n 3\nz\n").unwrap_err();
        assert!(err.to_string().starts_with("line 2:"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn roundtrip_random(seed in any::<u64>(), n in 2usize..30) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::gnp_weighted(n, 0.3, 500, &mut rng);
            let back = read_wgraph(&write_wgraph(&g)).unwrap();
            prop_assert_eq!(back.edges(), g.edges());
        }
    }
}

//! Graph substrate for the Congested Clique reproduction of Hegeman et al.
//! (PODC 2015), *Toward Optimal Bounds in the Congested Clique: Graph
//! Connectivity and MST*.
//!
//! This crate is deliberately self-contained (no simulator types) so that the
//! sequential reference algorithms used to validate the distributed runs do
//! not share code with the implementations under test.
//!
//! The main pieces are:
//!
//! * [`Graph`] / [`WGraph`] — simple undirected (weighted) graphs on vertex
//!   set `0..n`, matching the paper's convention that the input graph is a
//!   spanning subgraph of the `n`-machine clique.
//! * [`Weight`] — edge weights with the standard lexicographic tie-break
//!   `(w, u, v)` that makes the minimum spanning tree unique, so distributed
//!   and sequential outputs can be compared edge-for-edge.
//! * [`edge_index`] / [`edge_from_index`] — the canonical bijection between
//!   vertex pairs and the edge universe `[0, C(n,2))` used by the linear
//!   sketches of Section 2.1 of the paper.
//! * [`UnionFind`] — the disjoint-set forest used by every Borůvka/Kruskal
//!   style routine in the workspace.
//! * [`generators`] — the input families the experiments run on, including
//!   the circulant building blocks of the Section 3 lower bound.
//! * [`mst`] / [`connectivity`] — sequential reference algorithms
//!   (Kruskal, Prim, Borůvka, components, bipartiteness, edge connectivity).
//! * [`tree`] — rooted-forest utilities (binary lifting, path maxima) used by
//!   the Karger–Klein–Tarjan F-light classification.
//!
//! # Example
//!
//! ```
//! use cc_graph::{generators, mst, connectivity};
//! use rand_chacha::ChaCha8Rng;
//! use rand::SeedableRng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let g = generators::random_connected_wgraph(64, 0.1, 1_000, &mut rng);
//! let t = mst::kruskal(&g);
//! assert_eq!(t.len(), 63); // spanning tree of a connected graph
//! assert_eq!(connectivity::component_count(&g.as_unweighted()), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod edge;
pub mod generators;
pub mod graph;
pub mod io;
pub mod mst;
pub mod stream;
pub mod tree;
pub mod union_find;
pub mod weight;

pub use edge::{edge_from_index, edge_index, num_pairs, Edge, WEdge};
pub use graph::{Graph, WGraph};
pub use stream::{random_connected_csr, random_connected_edge_indices, CsrGraph};
pub use tree::RootedForest;
pub use union_find::UnionFind;
pub use weight::Weight;

pub mod stats;

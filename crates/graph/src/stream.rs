//! Streamed graph construction for large `n`: compact CSR adjacency and
//! integer-only random connected generators.
//!
//! The classic generators in [`generators`](crate::generators) sweep all
//! `C(n, 2)` vertex pairs (a coin flip per pair), which is fine up to a
//! few thousand vertices and hopeless at `n = 65 536` (2.1 billion RNG
//! calls before a single edge exists). The sketch kernels only ever
//! consume *neighbor lists*, so what large-`n` benchmarks actually need
//! is:
//!
//! * a generator whose work is `O(n + m)` — an attachment tree for
//!   connectivity plus rejection-sampled extra pair indices, all in
//!   integer arithmetic on the canonical [`edge_index`] universe (no
//!   floats, no `n²` sweep, no dense pair set);
//! * an adjacency form whose memory is `2m` words plus one offset table —
//!   [`CsrGraph`] — instead of `n` separately allocated `Vec`s.
//!
//! Both are deterministic given the RNG, and the edge *set* they produce
//! is exactly the sorted, deduplicated index multiset the sampler drew —
//! the same graph every run, every machine.

use crate::edge::{edge_from_index, edge_index, num_pairs};
use crate::graph::Graph;
use rand::Rng;

/// Compressed-sparse-row adjacency for an undirected simple graph on
/// vertex set `0..n`.
///
/// Neighbor lists are stored back-to-back in one `targets` buffer with an
/// `offsets` table of `n + 1` fences; `neighbors(v)` is a slice borrow,
/// and each list is sorted ascending (a by-product of building from the
/// sorted edge-index stream).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds from canonical edge indices (see [`edge_index`]); the input
    /// need not be sorted or unique — it is sorted and deduplicated here.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for `n`.
    pub fn from_edge_indices(n: usize, mut indices: Vec<u64>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        let mut degree = vec![0usize; n];
        let mut pairs = Vec::with_capacity(indices.len());
        for &idx in &indices {
            let (u, v) = edge_from_index(idx, n);
            degree[u] += 1;
            degree[v] += 1;
            pairs.push((u as u32, v as u32));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        // Fill via per-vertex cursors. Scanning pairs in edge-index order
        // (ascending (u, v)) appends each vertex's smaller neighbors in
        // ascending order before its larger ones, also ascending — so
        // every finished list is sorted without a per-vertex sort.
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; 2 * pairs.len()];
        for &(u, v) in &pairs {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        CsrGraph {
            n,
            offsets,
            targets,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// The sorted neighbor list of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Expands into the pointer-per-vertex [`Graph`] form (small `n`
    /// interop — tests and cross-checks; defeats the point at large `n`).
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for u in 0..self.n {
            for &v in self.neighbors(u) {
                if (v as usize) > u {
                    g.add_edge(u, v as usize);
                }
            }
        }
        g
    }
}

/// Canonical edge indices of a random connected graph, in `O(n + extra)`
/// integer-only work: a uniform random attachment tree (`parent(v)`
/// uniform in `0..v`, the standard random recursive tree) plus `extra`
/// uniformly drawn pair indices. Duplicates between and within the two
/// parts are deduplicated by the CSR builder, so the edge count is at
/// most — and typically slightly below — `n - 1 + extra`.
///
/// Returns the *unsorted* draw; [`CsrGraph::from_edge_indices`]
/// canonicalizes. Deterministic given the RNG state.
pub fn random_connected_edge_indices<R: Rng>(n: usize, extra: usize, rng: &mut R) -> Vec<u64> {
    let mut indices = Vec::with_capacity(n.saturating_sub(1) + extra);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        indices.push(edge_index(parent, v, n));
    }
    if n >= 2 {
        let pairs = num_pairs(n);
        for _ in 0..extra {
            indices.push(rng.gen_range(0..pairs));
        }
    }
    indices
}

/// A random connected graph in CSR form without ever touching the
/// `C(n, 2)` pair sweep: see [`random_connected_edge_indices`].
pub fn random_connected_csr<R: Rng>(n: usize, extra: usize, rng: &mut R) -> CsrGraph {
    CsrGraph::from_edge_indices(n, random_connected_edge_indices(n, extra, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use crate::union_find::UnionFind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn csr_matches_graph_built_from_same_edges() {
        let mut r = rng(1);
        let idx = random_connected_edge_indices(60, 90, &mut r);
        let csr = CsrGraph::from_edge_indices(60, idx.clone());
        let g = csr.to_graph();
        assert_eq!(g.m(), csr.m());
        for v in 0..60 {
            let mut from_g: Vec<u32> = g.neighbors(v).to_vec();
            from_g.sort_unstable();
            assert_eq!(csr.neighbors(v), &from_g[..], "vertex {v}");
        }
    }

    #[test]
    fn neighbor_lists_are_sorted_and_deduplicated() {
        let mut r = rng(2);
        let csr = random_connected_csr(200, 400, &mut r);
        let mut total = 0;
        for v in 0..200 {
            let ns = csr.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "vertex {v}: {ns:?}");
            assert!(ns.iter().all(|&u| (u as usize) < 200 && u as usize != v));
            total += ns.len();
        }
        assert_eq!(total, 2 * csr.m());
    }

    #[test]
    fn generated_graphs_are_connected() {
        for seed in 0..10 {
            let n = 2 + 37 * seed as usize;
            let csr = random_connected_csr(n, n / 2, &mut rng(seed));
            let mut uf = UnionFind::new(n);
            for u in 0..n {
                for &v in csr.neighbors(u) {
                    uf.union(u, v as usize);
                }
            }
            assert_eq!(uf.set_count(), 1, "n={n} seed={seed}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_connected_csr(500, 1000, &mut rng(7));
        let b = random_connected_csr(500, 1000, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn small_world_agrees_with_dense_connectivity_check() {
        let csr = random_connected_csr(80, 40, &mut rng(9));
        let g = csr.to_graph();
        assert_eq!(connectivity::component_count(&g), 1);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(random_connected_csr(0, 0, &mut rng(0)).m(), 0);
        assert_eq!(random_connected_csr(1, 5, &mut rng(0)).m(), 0);
        let two = random_connected_csr(2, 3, &mut rng(0));
        assert_eq!(two.m(), 1);
        assert_eq!(two.neighbors(0), &[1]);
        assert_eq!(two.neighbors(1), &[0]);
    }

    #[test]
    fn edge_budget_is_linear_not_quadratic() {
        // m ≤ n - 1 + extra always (dedup can only shrink the draw).
        let csr = random_connected_csr(1000, 2500, &mut rng(11));
        assert!(csr.m() <= 999 + 2500);
        assert!(csr.m() >= 999);
    }
}

//! Rooted forests with binary-lifting path-maximum queries.
//!
//! The Karger–Klein–Tarjan filter step (Definition 1 / Lemma 6 of the paper)
//! classifies an edge `{u, v}` as *F-light* iff its weight is at most the
//! maximum edge weight on the `u`–`v` path in the forest `F` (with the
//! convention `wt_F(u, v) = ∞` when no path exists). [`RootedForest`]
//! answers those path-maximum queries in `O(log n)` after
//! `O(n log n)` preprocessing.

use crate::edge::WEdge;
use crate::weight::Weight;
use std::collections::VecDeque;

const NONE: u32 = u32::MAX;

/// A forest on vertices `0..n`, rooted arbitrarily per tree, supporting
/// lowest-common-ancestor and path-maximum queries via binary lifting.
#[derive(Clone, Debug)]
pub struct RootedForest {
    n: usize,
    parent: Vec<u32>,
    parent_w: Vec<Option<Weight>>,
    depth: Vec<u32>,
    tree_id: Vec<u32>,
    /// `up[j][v]` = the `2^j`-th ancestor of `v` (or `NONE`).
    up: Vec<Vec<u32>>,
    /// `up_max[j][v]` = max edge weight on the path from `v` to `up[j][v]`.
    up_max: Vec<Vec<Option<Weight>>>,
}

impl RootedForest {
    /// Builds a rooted forest from a set of forest edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges contain a cycle or an endpoint `≥ n`.
    pub fn from_edges(n: usize, edges: &[WEdge]) -> Self {
        let mut adj: Vec<Vec<(u32, Weight)>> = vec![Vec::new(); n];
        for e in edges {
            let (u, v) = e.endpoints();
            assert!(u < n && v < n, "forest edge endpoint out of range");
            adj[u].push((v as u32, e.weight()));
            adj[v].push((u as u32, e.weight()));
        }
        let mut parent = vec![NONE; n];
        let mut parent_w: Vec<Option<Weight>> = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut tree_id = vec![NONE; n];
        let mut seen = vec![false; n];
        let mut edges_used = 0usize;
        let mut queue = VecDeque::new();
        for root in 0..n {
            if seen[root] {
                continue;
            }
            seen[root] = true;
            tree_id[root] = root as u32;
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                for &(v, w) in &adj[u] {
                    let v = v as usize;
                    if !seen[v] {
                        seen[v] = true;
                        parent[v] = u as u32;
                        parent_w[v] = Some(w);
                        depth[v] = depth[u] + 1;
                        tree_id[v] = root as u32;
                        edges_used += 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        assert_eq!(edges_used, edges.len(), "edge set contains a cycle");

        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let levels = (u32::BITS - max_depth.leading_zeros()).max(1) as usize;
        let mut up = Vec::with_capacity(levels);
        let mut up_max = Vec::with_capacity(levels);
        up.push(parent.clone());
        up_max.push(parent_w.clone());
        for j in 1..levels {
            let (prev_up, prev_max) = (&up[j - 1], &up_max[j - 1]);
            let mut cur_up = vec![NONE; n];
            let mut cur_max: Vec<Option<Weight>> = vec![None; n];
            for v in 0..n {
                let mid = prev_up[v];
                if mid != NONE {
                    cur_up[v] = prev_up[mid as usize];
                    if cur_up[v] != NONE {
                        cur_max[v] = max_opt(prev_max[v], prev_max[mid as usize]);
                    }
                }
            }
            up.push(cur_up);
            up_max.push(cur_max);
        }
        RootedForest {
            n,
            parent,
            parent_w,
            depth,
            tree_id,
            up,
            up_max,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Parent of `v`, or `None` for roots.
    pub fn parent(&self, v: usize) -> Option<usize> {
        (self.parent[v] != NONE).then(|| self.parent[v] as usize)
    }

    /// Depth of `v` within its tree (roots have depth 0).
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v] as usize
    }

    /// Whether `u` and `v` belong to the same tree.
    pub fn same_tree(&self, u: usize, v: usize) -> bool {
        self.tree_id[u] == self.tree_id[v]
    }

    /// Lowest common ancestor of `u` and `v`, or `None` if they are in
    /// different trees.
    pub fn lca(&self, u: usize, v: usize) -> Option<usize> {
        if !self.same_tree(u, v) {
            return None;
        }
        let (mut u, mut v) = (u, v);
        if self.depth[u] < self.depth[v] {
            std::mem::swap(&mut u, &mut v);
        }
        let mut diff = self.depth[u] - self.depth[v];
        let mut j = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                u = self.up[j][u] as usize;
            }
            diff >>= 1;
            j += 1;
        }
        if u == v {
            return Some(u);
        }
        for j in (0..self.up.len()).rev() {
            if self.up[j][u] != self.up[j][v] {
                u = self.up[j][u] as usize;
                v = self.up[j][v] as usize;
            }
        }
        Some(self.parent[u] as usize)
    }

    /// Maximum edge weight on the `u`–`v` path.
    ///
    /// Returns `None` when there is no path (`u`, `v` in different trees) —
    /// the `wt_F = ∞` case of Definition 1 is expressed by the caller
    /// treating `None` as infinite — and also `None` for `u == v`
    /// (empty path).
    pub fn path_max(&self, u: usize, v: usize) -> Option<Weight> {
        if u == v {
            return None;
        }
        let anc = self.lca(u, v)?;
        max_opt(self.max_to_ancestor(u, anc), self.max_to_ancestor(v, anc))
    }

    /// Max edge weight on the path from `v` up to ancestor `anc`
    /// (exclusive of anything above `anc`); `None` if `v == anc`.
    fn max_to_ancestor(&self, v: usize, anc: usize) -> Option<Weight> {
        let mut v = v;
        let mut acc: Option<Weight> = None;
        let mut diff = self.depth[v] - self.depth[anc];
        let mut j = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                acc = max_opt(acc, self.up_max[j][v]);
                v = self.up[j][v] as usize;
            }
            diff >>= 1;
            j += 1;
        }
        debug_assert_eq!(v, anc);
        acc
    }

    /// Weight of the edge to `v`'s parent (used in tests).
    pub fn parent_weight(&self, v: usize) -> Option<Weight> {
        self.parent_w[v]
    }
}

fn max_opt(a: Option<Weight>, b: Option<Weight>) -> Option<Weight> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::WGraph;
    use crate::mst;
    use proptest::prelude::*;
    use rand::Rng as _;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Brute-force path max by DFS.
    fn brute_path_max(n: usize, edges: &[WEdge], s: usize, t: usize) -> Option<Weight> {
        let mut adj: Vec<Vec<(usize, Weight)>> = vec![Vec::new(); n];
        for e in edges {
            let (u, v) = e.endpoints();
            adj[u].push((v, e.weight()));
            adj[v].push((u, e.weight()));
        }
        // DFS carrying the running max.
        let mut stack = vec![(s, usize::MAX, None::<Weight>)];
        while let Some((u, from, acc)) = stack.pop() {
            if u == t {
                return acc;
            }
            for &(v, w) in &adj[u] {
                if v != from {
                    stack.push((v, u, super::max_opt(acc, Some(w))));
                }
            }
        }
        None
    }

    #[test]
    fn path_forest_basics() {
        // 0 -1- 1 -5- 2 -3- 3
        let edges = vec![
            WEdge::new(0, 1, 1),
            WEdge::new(1, 2, 5),
            WEdge::new(2, 3, 3),
        ];
        let f = RootedForest::from_edges(4, &edges);
        assert!(f.same_tree(0, 3));
        assert_eq!(f.path_max(0, 3).unwrap().w, 5);
        assert_eq!(f.path_max(2, 3).unwrap().w, 3);
        assert_eq!(f.path_max(1, 1), None, "empty path has no max");
    }

    #[test]
    fn cross_tree_queries_are_none() {
        let edges = vec![WEdge::new(0, 1, 1), WEdge::new(2, 3, 2)];
        let f = RootedForest::from_edges(4, &edges);
        assert!(!f.same_tree(0, 2));
        assert_eq!(f.path_max(0, 3), None);
        assert_eq!(f.lca(1, 2), None);
    }

    #[test]
    fn lca_on_a_star() {
        let edges: Vec<WEdge> = (1..6).map(|v| WEdge::new(0, v, v as u64)).collect();
        let f = RootedForest::from_edges(6, &edges);
        assert_eq!(f.lca(1, 2), Some(0));
        assert_eq!(f.lca(3, 3), Some(3));
        assert_eq!(f.path_max(1, 2).unwrap().w, 2);
    }

    #[test]
    fn deep_path_queries() {
        let n = 5000;
        let edges: Vec<WEdge> = (1..n)
            .map(|v| WEdge::new(v - 1, v, (v % 97) as u64))
            .collect();
        let f = RootedForest::from_edges(n, &edges);
        assert_eq!(f.path_max(0, n - 1).unwrap().w, 96);
        assert_eq!(f.depth(n - 1), n - 1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn rejects_cycles() {
        let edges = vec![
            WEdge::new(0, 1, 1),
            WEdge::new(1, 2, 2),
            WEdge::new(0, 2, 3),
        ];
        RootedForest::from_edges(3, &edges);
    }

    #[test]
    fn singleton_vertices_are_their_own_trees() {
        let f = RootedForest::from_edges(3, &[]);
        assert!(!f.same_tree(0, 1));
        assert_eq!(f.parent(2), None);
        assert_eq!(f.depth(2), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Binary-lifting path max agrees with brute force on random MSFs.
        #[test]
        fn matches_brute_force(seed in any::<u64>(), n in 2usize..40) {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::gnp_weighted(n, 0.15, 1000, &mut r);
            let forest = mst::kruskal(&g);
            let f = RootedForest::from_edges(n, &forest);
            for _ in 0..20 {
                let u = r.gen_range(0..n);
                let v = r.gen_range(0..n);
                if u == v { continue; }
                prop_assert_eq!(f.path_max(u, v), brute_path_max(n, &forest, u, v));
            }
        }

        /// On a spanning tree of a connected graph, every non-tree edge is
        /// at least as heavy (tie-broken) as the path max between its
        /// endpoints — the cycle property of the MST.
        #[test]
        fn mst_cycle_property(seed in any::<u64>(), n in 3usize..30) {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::random_connected_wgraph(n, 0.3, 100, &mut r);
            let t = mst::kruskal(&g);
            let f = RootedForest::from_edges(n, &t);
            let tset: std::collections::BTreeSet<_> = t.iter().map(|e| e.edge()).collect();
            for e in g.edges() {
                if tset.contains(&e.edge()) { continue; }
                let pm = f.path_max(e.u as usize, e.v as usize).unwrap();
                prop_assert!(e.weight() > pm, "non-tree edge lighter than path max");
            }
        }
    }

    #[test]
    fn works_on_forest_of_msf() {
        // Disconnected weighted graph → MSF → queries across and within.
        let mut g = WGraph::new(8);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 2, 9);
        g.add_edge(0, 2, 1);
        g.add_edge(4, 5, 2);
        g.add_edge(5, 6, 8);
        let msf = mst::kruskal(&g);
        let f = RootedForest::from_edges(8, &msf);
        assert!(f.same_tree(0, 2));
        assert!(!f.same_tree(0, 4));
        assert!(f.path_max(4, 6).unwrap().w == 8);
        assert_eq!(f.path_max(3, 7), None);
    }
}

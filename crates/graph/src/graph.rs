//! Simple undirected graphs on vertex set `0..n`.
//!
//! Both [`Graph`] (unweighted) and [`WGraph`] (weighted) are adjacency-list
//! structures for *simple* graphs: no self-loops, no parallel edges. In the
//! Congested Clique model the input graph is a spanning subgraph of the
//! machine clique, so vertices and machine IDs coincide.

use crate::edge::{Edge, WEdge};
use crate::weight::Weight;
use std::collections::BTreeSet;

/// An undirected, unweighted simple graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<u32>>,
    m: usize,
}

impl Graph {
    /// Empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Graph on `n` vertices with the given edges (duplicates and reversed
    /// orientations are deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `≥ n` or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut g = Graph::new(n);
        let set: BTreeSet<Edge> = edges.into_iter().collect();
        for e in set {
            g.add_edge(e.u as usize, e.v as usize);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Adds the edge `{a, b}` if not already present; returns whether it was
    /// inserted.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is `≥ n`.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "endpoint out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        if self.has_edge(a, b) {
            return false;
        }
        self.adj[a].push(b as u32);
        self.adj[b].push(a as u32);
        self.m += 1;
        true
    }

    /// Whether the edge `{a, b}` is present.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        if a >= self.n || b >= self.n || a == b {
            return false;
        }
        // Scan the shorter list.
        let (x, y) = if self.adj[a].len() <= self.adj[b].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[x].contains(&(y as u32))
    }

    /// Neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v ≥ n`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// All edges in canonical orientation, ascending.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.m);
        for u in 0..self.n {
            for &v in &self.adj[u] {
                if u < v as usize {
                    out.push(Edge::new(u, v as usize));
                }
            }
        }
        out.sort();
        out
    }

    /// Removes the edge `{a, b}` if present; returns whether it was removed.
    pub fn remove_edge(&mut self, a: usize, b: usize) -> bool {
        if !self.has_edge(a, b) {
            return false;
        }
        self.adj[a].retain(|&x| x as usize != b);
        self.adj[b].retain(|&x| x as usize != a);
        self.m -= 1;
        true
    }
}

/// An undirected, weighted simple graph with `u64` raw weights.
///
/// Weight comparisons throughout the workspace go through [`Weight`], which
/// tie-breaks by endpoints, so equal raw weights are fine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WGraph {
    n: usize,
    adj: Vec<Vec<(u32, u64)>>,
    m: usize,
}

impl WGraph {
    /// Empty weighted graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        WGraph {
            n,
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Weighted graph on `n` vertices from an edge list (later duplicates of
    /// the same pair are ignored).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `≥ n` or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = WEdge>) -> Self {
        let mut g = WGraph::new(n);
        for e in edges {
            g.add_edge(e.u as usize, e.v as usize, e.w);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Adds the edge `{a, b}` with raw weight `w` if absent; returns whether
    /// it was inserted.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is `≥ n`.
    pub fn add_edge(&mut self, a: usize, b: usize, w: u64) -> bool {
        assert!(a < self.n && b < self.n, "endpoint out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        if self.has_edge(a, b) {
            return false;
        }
        self.adj[a].push((b as u32, w));
        self.adj[b].push((a as u32, w));
        self.m += 1;
        true
    }

    /// Whether the edge `{a, b}` is present.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        if a >= self.n || b >= self.n || a == b {
            return false;
        }
        let (x, y) = if self.adj[a].len() <= self.adj[b].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[x].iter().any(|&(t, _)| t as usize == y)
    }

    /// Raw weight of the edge `{a, b}`, if present.
    pub fn weight_of(&self, a: usize, b: usize) -> Option<u64> {
        if a >= self.n || b >= self.n || a == b {
            return None;
        }
        self.adj[a]
            .iter()
            .find(|&&(t, _)| t as usize == b)
            .map(|&(_, w)| w)
    }

    /// Tie-broken [`Weight`] of the edge `{a, b}`, if present.
    pub fn tie_weight_of(&self, a: usize, b: usize) -> Option<Weight> {
        self.weight_of(a, b).map(|w| Weight::new(w, a, b))
    }

    /// Weighted neighbors of `v` as `(neighbor, raw weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v ≥ n`.
    pub fn neighbors(&self, v: usize) -> &[(u32, u64)] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// All weighted edges in canonical orientation, sorted by tie-broken
    /// weight (the unique rank order of Algorithm 4).
    pub fn edges(&self) -> Vec<WEdge> {
        let mut out = Vec::with_capacity(self.m);
        for u in 0..self.n {
            for &(v, w) in &self.adj[u] {
                if u < v as usize {
                    out.push(WEdge::new(u, v as usize, w));
                }
            }
        }
        out.sort();
        out
    }

    /// Forgets weights.
    pub fn as_unweighted(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for u in 0..self.n {
            for &(v, _) in &self.adj[u] {
                if u < v as usize {
                    g.add_edge(u, v as usize);
                }
            }
        }
        g
    }

    /// Sum of raw weights of an edge set (used to compare MSTs by weight).
    pub fn total_weight(edges: &[WEdge]) -> u128 {
        edges.iter().map(|e| e.w as u128).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "reversed duplicate must be rejected");
        assert!(g.add_edge(2, 3));
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.m(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn from_edges_dedups() {
        let g = Graph::from_edges(3, [Edge::new(0, 1), Edge::new(1, 0), Edge::new(1, 2)]);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edges_are_sorted_canonical() {
        let mut g = Graph::new(4);
        g.add_edge(3, 2);
        g.add_edge(1, 0);
        let es = g.edges();
        assert_eq!(es, vec![Edge::new(0, 1), Edge::new(2, 3)]);
    }

    #[test]
    fn weighted_queries() {
        let mut g = WGraph::new(4);
        g.add_edge(0, 1, 9);
        g.add_edge(2, 1, 4);
        assert_eq!(g.weight_of(1, 0), Some(9));
        assert_eq!(g.weight_of(1, 2), Some(4));
        assert_eq!(g.weight_of(0, 2), None);
        assert_eq!(g.tie_weight_of(0, 1), Some(Weight::new(9, 0, 1)));
    }

    #[test]
    fn weighted_edges_sorted_by_tie_weight() {
        let mut g = WGraph::new(4);
        g.add_edge(0, 3, 7);
        g.add_edge(0, 1, 7);
        g.add_edge(2, 3, 1);
        let es = g.edges();
        assert_eq!(
            es,
            vec![
                WEdge::new(2, 3, 1),
                WEdge::new(0, 1, 7),
                WEdge::new(0, 3, 7)
            ]
        );
    }

    #[test]
    fn as_unweighted_preserves_structure() {
        let mut g = WGraph::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 6);
        let u = g.as_unweighted();
        assert_eq!(u.m(), 2);
        assert!(u.has_edge(0, 1) && u.has_edge(1, 2) && !u.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        Graph::new(2).add_edge(0, 5);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        WGraph::new(3).add_edge(1, 1, 2);
    }
}

//! Sequential reference MST algorithms.
//!
//! All three classics are provided — Kruskal, Prim, Borůvka — and all of
//! them compute the *minimum spanning forest* (one tree per component) under
//! the tie-broken total order of [`Weight`]. Because that
//! order makes weights distinct, the MSF is unique and all three algorithms
//! (and every distributed algorithm in this workspace) must return exactly
//! the same edge set; the tests rely on this.

use crate::edge::WEdge;
use crate::graph::WGraph;
use crate::union_find::UnionFind;
use crate::weight::Weight;
use std::collections::BinaryHeap;

/// Kruskal's algorithm: the minimum spanning forest as a sorted edge list.
pub fn kruskal(g: &WGraph) -> Vec<WEdge> {
    let mut uf = UnionFind::new(g.n());
    let mut out = Vec::new();
    for e in g.edges() {
        // g.edges() is already sorted by tie-broken weight.
        if uf.union(e.u as usize, e.v as usize) {
            out.push(e);
        }
    }
    out.sort();
    out
}

/// Prim's algorithm (run from every unvisited vertex, so it yields the full
/// forest on disconnected inputs).
pub fn prim(g: &WGraph) -> Vec<WEdge> {
    let n = g.n();
    let mut in_tree = vec![false; n];
    let mut out = Vec::new();
    // Max-heap on Reverse(weight).
    let mut heap: BinaryHeap<(std::cmp::Reverse<Weight>, u32, u32)> = BinaryHeap::new();
    for root in 0..n {
        if in_tree[root] {
            continue;
        }
        in_tree[root] = true;
        for &(v, w) in g.neighbors(root) {
            heap.push((
                std::cmp::Reverse(Weight::new(w, root, v as usize)),
                root as u32,
                v,
            ));
        }
        while let Some((std::cmp::Reverse(wt), from, to)) = heap.pop() {
            let to = to as usize;
            if in_tree[to] {
                continue;
            }
            in_tree[to] = true;
            out.push(WEdge::new(from as usize, to, wt.w));
            for &(v, w) in g.neighbors(to) {
                if !in_tree[v as usize] {
                    heap.push((
                        std::cmp::Reverse(Weight::new(w, to, v as usize)),
                        to as u32,
                        v,
                    ));
                }
            }
        }
    }
    out.sort();
    out
}

/// Borůvka's algorithm: repeated minimum-outgoing-edge contraction.
///
/// This mirrors the merge logic the coordinator performs locally in
/// SKETCHANDSPAN and in the Lotker et al. controlled merge, so having it as
/// an independent oracle exercises the same proof obligations.
pub fn boruvka(g: &WGraph) -> Vec<WEdge> {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    let mut out: Vec<WEdge> = Vec::new();
    loop {
        // Minimum outgoing edge per current component.
        let mut best: Vec<Option<WEdge>> = vec![None; n];
        for u in 0..n {
            for &(v, w) in g.neighbors(u) {
                let v = v as usize;
                if u > v {
                    continue;
                }
                let (cu, cv) = (uf.find(u), uf.find(v));
                if cu == cv {
                    continue;
                }
                let e = WEdge::new(u, v, w);
                for c in [cu, cv] {
                    if best[c].is_none_or(|b| e.weight() < b.weight()) {
                        best[c] = Some(e);
                    }
                }
            }
        }
        let mut merged_any = false;
        for &e in best.iter().flatten() {
            if uf.union(e.u as usize, e.v as usize) {
                out.push(e);
                merged_any = true;
            }
            // If the union was a no-op, the same edge was chosen from
            // both sides this round and was already added once.
        }
        if !merged_any {
            break;
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Checks that `edges` forms a spanning forest of `g`: acyclic, uses only
/// edges of `g` (with matching weights), and connects exactly `g`'s
/// components.
pub fn is_spanning_forest(g: &WGraph, edges: &[WEdge]) -> bool {
    let mut uf = UnionFind::new(g.n());
    for e in edges {
        if g.weight_of(e.u as usize, e.v as usize) != Some(e.w) {
            return false; // not an edge of g (or wrong weight)
        }
        if !uf.union(e.u as usize, e.v as usize) {
            return false; // cycle
        }
    }
    // Spanning: contracting the forest must leave no g-edge between
    // different forest components.
    for e in g.edges() {
        if !uf.same(e.u as usize, e.v as usize) {
            return false;
        }
    }
    true
}

/// Checks that `edges` is *the* minimum spanning forest of `g` under the
/// tie-broken order (unique, so equality with Kruskal's output).
pub fn is_minimum_spanning_forest(g: &WGraph, edges: &[WEdge]) -> bool {
    let mut sorted = edges.to_vec();
    sorted.sort();
    sorted == kruskal(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn tiny_known_mst() {
        let mut g = WGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(3, 0, 4);
        g.add_edge(0, 2, 10);
        let t = kruskal(&g);
        assert_eq!(
            t,
            vec![
                WEdge::new(0, 1, 1),
                WEdge::new(1, 2, 2),
                WEdge::new(2, 3, 3)
            ]
        );
        assert!(is_spanning_forest(&g, &t));
        assert!(is_minimum_spanning_forest(&g, &t));
    }

    #[test]
    fn all_three_agree_on_cliques() {
        for seed in 0..5 {
            let g = generators::complete_wgraph(20, &mut rng(seed));
            let k = kruskal(&g);
            assert_eq!(k, prim(&g), "seed={seed}");
            assert_eq!(k, boruvka(&g), "seed={seed}");
            assert_eq!(k.len(), 19);
        }
    }

    #[test]
    fn all_three_agree_with_heavy_ties() {
        // All weights equal: the tie-break must still make the MSF unique.
        let base = generators::gnp(30, 0.2, &mut rng(42));
        let mut g = WGraph::new(30);
        for e in base.edges() {
            g.add_edge(e.u as usize, e.v as usize, 7);
        }
        let k = kruskal(&g);
        assert_eq!(k, prim(&g));
        assert_eq!(k, boruvka(&g));
        assert!(is_spanning_forest(&g, &k));
    }

    #[test]
    fn disconnected_inputs_give_forests() {
        let mut rng = rng(3);
        let a = generators::random_connected_wgraph(10, 0.3, 100, &mut rng);
        let b = generators::random_connected_wgraph(7, 0.3, 100, &mut rng);
        let mut g = WGraph::new(17);
        for e in a.edges() {
            g.add_edge(e.u as usize, e.v as usize, e.w);
        }
        for e in b.edges() {
            g.add_edge(10 + e.u as usize, 10 + e.v as usize, e.w);
        }
        let k = kruskal(&g);
        assert_eq!(k.len(), 15, "two trees: 9 + 6 edges");
        assert_eq!(k, prim(&g));
        assert_eq!(k, boruvka(&g));
    }

    #[test]
    fn empty_and_edgeless() {
        let g = WGraph::new(5);
        assert!(kruskal(&g).is_empty());
        assert!(prim(&g).is_empty());
        assert!(boruvka(&g).is_empty());
        assert!(is_spanning_forest(&g, &[]));
    }

    #[test]
    fn validator_rejects_non_forests() {
        let mut g = WGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(0, 2, 3);
        // Cycle:
        assert!(!is_spanning_forest(
            &g,
            &[
                WEdge::new(0, 1, 1),
                WEdge::new(1, 2, 2),
                WEdge::new(0, 2, 3)
            ]
        ));
        // Not spanning:
        assert!(!is_spanning_forest(&g, &[WEdge::new(0, 1, 1)]));
        // Foreign edge:
        let mut h = WGraph::new(3);
        h.add_edge(0, 1, 1);
        assert!(!is_spanning_forest(&h, &[WEdge::new(0, 1, 99)]));
    }

    #[test]
    fn validator_rejects_suboptimal_forest() {
        let mut g = WGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(0, 2, 3);
        let sub = vec![WEdge::new(1, 2, 2), WEdge::new(0, 2, 3)];
        assert!(is_spanning_forest(&g, &sub));
        assert!(!is_minimum_spanning_forest(&g, &sub));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Kruskal, Prim and Borůvka agree edge-for-edge on arbitrary
        /// weighted G(n,p) graphs (connected or not, ties or not).
        #[test]
        fn classics_agree(seed in any::<u64>(), n in 2usize..40, pct in 0u32..100, maxw in 1u64..50) {
            let mut r = rng(seed);
            let g = generators::gnp_weighted(n, pct as f64 / 100.0, maxw, &mut r);
            let k = kruskal(&g);
            prop_assert_eq!(&k, &prim(&g));
            prop_assert_eq!(&k, &boruvka(&g));
            prop_assert!(is_spanning_forest(&g, &k));
        }

        /// The MSF has n - #components edges and minimum total weight among
        /// a sample of random spanning forests.
        #[test]
        fn msf_weight_is_minimal(seed in any::<u64>(), n in 3usize..25) {
            let mut r = rng(seed);
            let g = generators::random_connected_wgraph(n, 0.3, 1000, &mut r);
            let k = kruskal(&g);
            prop_assert_eq!(k.len(), n - 1);
            let kw = WGraph::total_weight(&k);
            // Compare against greedy-from-shuffled-order spanning trees.
            for _ in 0..5 {
                let mut es = g.edges();
                use rand::seq::SliceRandom;
                es.shuffle(&mut r);
                let mut uf = UnionFind::new(n);
                let alt: Vec<WEdge> = es.into_iter()
                    .filter(|e| uf.union(e.u as usize, e.v as usize))
                    .collect();
                prop_assert!(WGraph::total_weight(&alt) >= kw);
            }
        }
    }
}

//! Sequential reference algorithms for connectivity-type questions.
//!
//! These are the oracles the distributed runs are validated against:
//! component structure (for GC, Theorem 4), bipartiteness (Remark 5),
//! edge connectivity (Remark 5 and the Section 3 construction, which needs
//! its circulant halves to survive one edge removal), and biconnectivity
//! (the paper builds `G_U`, `G_V` *biconnected*).

use crate::graph::Graph;
use std::collections::VecDeque;

/// Component label of every vertex: the minimum vertex ID in its component,
/// matching the paper's "leader = node with minimum ID" convention.
pub fn component_labels(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut label = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if label[v] == usize::MAX {
                    label[v] = start;
                    queue.push_back(v);
                }
            }
        }
    }
    label
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let labels = component_labels(g);
    let mut roots: Vec<usize> = labels.clone();
    roots.sort_unstable();
    roots.dedup();
    // Labels are component minima, so each component contributes exactly one.
    debug_assert!(labels.iter().enumerate().all(|(v, &l)| l <= v));
    roots.len()
}

/// Whether the graph is connected (the GC output for a single machine).
///
/// The empty graph (n = 0) is considered connected.
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || component_count(g) == 1
}

/// A maximal spanning forest: one BFS tree per component, as canonical
/// parent edges. Returned edges are `(parent, child)` pairs.
pub fn spanning_forest(g: &Graph) -> Vec<(usize, usize)> {
    let n = g.n();
    let mut seen = vec![false; n];
    let mut forest = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if !seen[v] {
                    seen[v] = true;
                    forest.push((u, v));
                    queue.push_back(v);
                }
            }
        }
    }
    forest
}

/// Whether the graph is bipartite (2-colorable), via BFS coloring.
pub fn is_bipartite(g: &Graph) -> bool {
    two_coloring(g).is_some()
}

/// A 2-coloring if one exists (`color[v] ∈ {0, 1}`), else `None`.
pub fn two_coloring(g: &Graph) -> Option<Vec<u8>> {
    let n = g.n();
    let mut color = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if color[v] == u8::MAX {
                    color[v] = 1 - color[u];
                    queue.push_back(v);
                } else if color[v] == color[u] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Bridges (cut edges) of the graph, via the classic DFS low-link algorithm
/// (iterative, so deep graphs do not overflow the stack).
pub fn bridges(g: &Graph) -> Vec<(usize, usize)> {
    let n = g.n();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut out = Vec::new();
    let mut timer = 0usize;
    // Frame: (vertex, parent edge expressed as (parent, slot skip), next neighbor index)
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(&mut (u, parent, ref mut idx)) = stack.last_mut() {
            if *idx < g.degree(u) {
                let v = g.neighbors(u)[*idx] as usize;
                *idx += 1;
                if disc[v] == usize::MAX {
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, u, 0));
                } else if v != parent {
                    low[u] = low[u].min(disc[v]);
                }
                // A single parallel edge back to the parent cannot exist in a
                // simple graph, so skipping `v == parent` once per visit is
                // correct here.
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        out.push((p.min(u), p.max(u)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Whether the graph is 2-edge-connected: connected, at least 2 vertices,
/// and bridgeless. (The Section 3 swap argument needs exactly this from
/// `G_U` and `G_V`: removing any one edge keeps them connected.)
pub fn is_two_edge_connected(g: &Graph) -> bool {
    g.n() >= 2 && is_connected(g) && bridges(g).is_empty()
}

/// Articulation points (cut vertices), iterative DFS low-link.
pub fn articulation_points(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut root_children = 0usize;
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(&mut (u, parent, ref mut idx)) = stack.last_mut() {
            if *idx < g.degree(u) {
                let v = g.neighbors(u)[*idx] as usize;
                *idx += 1;
                if disc[v] == usize::MAX {
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    if u == root {
                        root_children += 1;
                    }
                    stack.push((v, u, 0));
                } else if v != parent {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root] = true;
        }
    }
    (0..n).filter(|&v| is_cut[v]).collect()
}

/// Whether the graph is biconnected (2-vertex-connected): connected, at
/// least 3 vertices, and without articulation points.
pub fn is_biconnected(g: &Graph) -> bool {
    g.n() >= 3 && is_connected(g) && articulation_points(g).is_empty()
}

/// Maximum number of edge-disjoint `s`–`t` paths (local edge connectivity),
/// via BFS augmentation on unit capacities (Edmonds–Karp).
///
/// # Panics
///
/// Panics if `s` or `t` is out of range or `s == t`.
pub fn local_edge_connectivity(g: &Graph, s: usize, t: usize) -> usize {
    assert!(
        s < g.n() && t < g.n() && s != t,
        "need distinct s, t in range"
    );
    // Residual capacities on directed arcs; an undirected unit edge becomes
    // two opposite unit arcs (standard for undirected max-flow).
    use std::collections::HashMap;
    let mut cap: HashMap<(usize, usize), i64> = HashMap::new();
    for e in g.edges() {
        let (u, v) = e.endpoints();
        cap.insert((u, v), 1);
        cap.insert((v, u), 1);
    }
    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path.
        let mut pred = vec![usize::MAX; g.n()];
        let mut queue = VecDeque::new();
        pred[s] = s;
        queue.push_back(s);
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if pred[v] == usize::MAX && *cap.get(&(u, v)).unwrap_or(&0) > 0 {
                    pred[v] = u;
                    if v == t {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if pred[t] == usize::MAX {
            return flow;
        }
        // Augment by 1 along the path.
        let mut v = t;
        while v != s {
            let u = pred[v];
            *cap.get_mut(&(u, v)).unwrap() -= 1;
            *cap.get_mut(&(v, u)).unwrap() += 1;
            v = u;
        }
        flow += 1;
    }
}

/// Global edge connectivity `λ(G)`: the minimum, over `t ≠ 0`, of the local
/// edge connectivity between vertex `0` and `t` (a standard reduction —
/// vertex 0 is on one side of any global minimum cut).
///
/// Returns `0` for disconnected or single-vertex graphs.
pub fn edge_connectivity(g: &Graph) -> usize {
    if g.n() < 2 || !is_connected(g) {
        return 0;
    }
    (1..g.n())
        .map(|t| local_edge_connectivity(g, 0, t))
        .min()
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn labels_are_component_minima() {
        let g = generators::disjoint_union(&generators::path(3), &generators::cycle(4));
        let labels = component_labels(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3, 3]);
        assert_eq!(component_count(&g), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert_eq!(component_count(&Graph::new(4)), 4);
    }

    #[test]
    fn spanning_forest_size() {
        let g = generators::disjoint_union(&generators::complete(4), &generators::path(3));
        let f = spanning_forest(&g);
        assert_eq!(f.len(), g.n() - component_count(&g));
    }

    #[test]
    fn bipartite_checks() {
        assert!(is_bipartite(&generators::path(6)));
        assert!(is_bipartite(&generators::cycle(6)));
        assert!(!is_bipartite(&generators::cycle(5)));
        assert!(!is_bipartite(&generators::complete(3)));
        assert!(
            is_bipartite(&Graph::new(3)),
            "edgeless graphs are bipartite"
        );
    }

    #[test]
    fn two_coloring_is_proper() {
        let g = generators::cycle(8);
        let c = two_coloring(&g).unwrap();
        for e in g.edges() {
            assert_ne!(c[e.u as usize], c[e.v as usize]);
        }
    }

    #[test]
    fn bridges_of_a_path_are_all_edges() {
        let g = generators::path(5);
        assert_eq!(bridges(&g).len(), 4);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn cycles_are_bridgeless_and_biconnected() {
        let g = generators::cycle(7);
        assert!(bridges(&g).is_empty());
        assert!(is_two_edge_connected(&g));
        assert!(is_biconnected(&g));
    }

    #[test]
    fn barbell_has_a_bridge_and_cut_vertices() {
        // Two triangles joined by edge {2,3}.
        let mut g = generators::disjoint_union(&generators::cycle(3), &generators::cycle(3));
        g.add_edge(2, 3);
        assert_eq!(bridges(&g), vec![(2, 3)]);
        let cuts = articulation_points(&g);
        assert_eq!(cuts, vec![2, 3]);
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn circulant_12_is_biconnected() {
        let g = generators::circulant(12, &[1, 2]);
        assert!(is_biconnected(&g));
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn edge_connectivity_of_standard_graphs() {
        assert_eq!(edge_connectivity(&generators::cycle(6)), 2);
        assert_eq!(edge_connectivity(&generators::complete(5)), 4);
        assert_eq!(edge_connectivity(&generators::path(4)), 1);
        assert_eq!(edge_connectivity(&generators::star(6)), 1);
        assert_eq!(edge_connectivity(&Graph::new(3)), 0);
    }

    #[test]
    fn circulant_edge_connectivity_equals_degree() {
        // Connected circulants with offsets {1,..,k} are 2k-edge-connected.
        let g = generators::circulant(11, &[1, 2]);
        assert_eq!(edge_connectivity(&g), 4);
    }

    #[test]
    fn local_connectivity_menger_sanity() {
        let g = generators::complete(4);
        assert_eq!(local_edge_connectivity(&g, 0, 3), 3);
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // The iterative DFS must handle very deep graphs.
        let g = generators::path(200_000);
        assert_eq!(bridges(&g).len(), g.m());
        assert_eq!(articulation_points(&g).len(), g.n() - 2);
    }

    #[test]
    fn random_graph_component_invariants() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..10 {
            let g = generators::gnp(60, 0.03, &mut rng);
            let labels = component_labels(&g);
            for e in g.edges() {
                assert_eq!(labels[e.u as usize], labels[e.v as usize]);
            }
            let f = spanning_forest(&g);
            assert_eq!(f.len(), g.n() - component_count(&g));
        }
    }
}

//! Edges and the canonical edge-universe indexing used by linear sketches.
//!
//! Section 2.1 of the paper represents each node's neighborhood as an
//! incidence vector over the universe of all `C(n,2)` vertex pairs. The
//! sketch machinery needs a fixed bijection between pairs `{x, y}` (with
//! `x < y`) and indices `0..C(n,2)`. We use the row-major "triangular"
//! layout: pair `(x, y)` maps to the position of `y` within the block of
//! pairs whose smaller endpoint is `x`.

use crate::weight::Weight;
use std::fmt;

/// An undirected, unweighted edge in canonical orientation (`u < v`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: u32,
    /// Larger endpoint.
    pub v: u32,
}

impl Edge {
    /// Canonical edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "self-loops are not edges");
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        Edge {
            u: u as u32,
            v: v as u32,
        }
    }

    /// Endpoints as `(usize, usize)`, smaller first.
    pub fn endpoints(&self) -> (usize, usize) {
        (self.u as usize, self.v as usize)
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: usize) -> usize {
        if x == self.u as usize {
            self.v as usize
        } else if x == self.v as usize {
            self.u as usize
        } else {
            panic!("{} is not an endpoint of {:?}", x, self)
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{},{}}}", self.u, self.v)
    }
}

/// A weighted undirected edge in canonical orientation (`u < v`).
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct WEdge {
    /// Smaller endpoint.
    pub u: u32,
    /// Larger endpoint.
    pub v: u32,
    /// Raw integer weight.
    pub w: u64,
}

impl WEdge {
    /// Canonical weighted edge `{a, b}` with raw weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize, w: u64) -> Self {
        let e = Edge::new(a, b);
        WEdge { u: e.u, v: e.v, w }
    }

    /// The unweighted canonical edge.
    pub fn edge(&self) -> Edge {
        Edge {
            u: self.u,
            v: self.v,
        }
    }

    /// The totally ordered [`Weight`] (raw weight + endpoint tie-break).
    pub fn weight(&self) -> Weight {
        Weight {
            w: self.w,
            u: self.u,
            v: self.v,
        }
    }

    /// Endpoints as `(usize, usize)`, smaller first.
    pub fn endpoints(&self) -> (usize, usize) {
        (self.u as usize, self.v as usize)
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: usize) -> usize {
        self.edge().other(x)
    }
}

impl fmt::Debug for WEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{},{}}}#{}", self.u, self.v, self.w)
    }
}

impl PartialOrd for WEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Weighted edges order by their tie-broken [`Weight`], so sorting a slice of
/// `WEdge` yields the unique rank order Algorithm 4 (SQ-MST) relies on.
impl Ord for WEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.weight().cmp(&other.weight())
    }
}

/// Number of vertex pairs `C(n,2)`, i.e. the size of the sketch universe.
pub fn num_pairs(n: usize) -> u64 {
    let n = n as u64;
    n * (n - 1) / 2
}

/// Index of the pair `{x, y}` in the canonical triangular layout of the
/// `C(n,2)` edge universe for an `n`-vertex graph.
///
/// The layout enumerates pairs with smaller endpoint `0` first
/// (`{0,1}, {0,2}, …, {0,n-1}`), then smaller endpoint `1`, and so on.
///
/// # Panics
///
/// Panics if `x == y` or either endpoint is `≥ n`.
pub fn edge_index(x: usize, y: usize, n: usize) -> u64 {
    assert!(x != y, "self-loops have no index");
    assert!(x < n && y < n, "endpoint out of range");
    let (a, b) = if x < y { (x, y) } else { (y, x) };
    let (a, b, n) = (a as u64, b as u64, n as u64);
    // Pairs with smaller endpoint < a: sum_{i<a} (n-1-i) = a*(2n-a-1)/2.
    a * (2 * n - a - 1) / 2 + (b - a - 1)
}

/// Inverse of [`edge_index`]: recovers the canonical pair `(x, y)` with
/// `x < y` from its universe index.
///
/// # Panics
///
/// Panics if `idx ≥ C(n,2)`.
pub fn edge_from_index(idx: u64, n: usize) -> (usize, usize) {
    assert!(idx < num_pairs(n), "edge index out of range");
    let nu = n as u64;
    // Find the smaller endpoint a: the largest a with block_start(a) <= idx.
    // block_start(a) = a*(2n-a-1)/2 is increasing in a, so binary search.
    let block_start = |a: u64| a * (2 * nu - a - 1) / 2;
    let (mut lo, mut hi) = (0u64, nu - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if block_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let a = lo;
    let b = a + 1 + (idx - block_start(a));
    (a as usize, b as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn edge_canonicalizes() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::new(5, 2).endpoints(), (2, 5));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(3, 8);
        assert_eq!(e.other(3), 8);
        assert_eq!(e.other(8), 3);
    }

    #[test]
    #[should_panic]
    fn edge_other_rejects_non_endpoint() {
        Edge::new(3, 8).other(5);
    }

    #[test]
    fn wedge_orders_by_weight_with_tie_break() {
        let a = WEdge::new(0, 1, 10);
        let b = WEdge::new(0, 2, 10);
        let c = WEdge::new(5, 6, 3);
        let mut v = vec![b, a, c];
        v.sort();
        assert_eq!(v, vec![c, a, b]);
    }

    #[test]
    fn indices_enumerate_the_triangle() {
        let n = 6;
        let mut seen = vec![false; num_pairs(n) as usize];
        for x in 0..n {
            for y in (x + 1)..n {
                let i = edge_index(x, y, n) as usize;
                assert!(!seen[i], "index {i} hit twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "indexing is not surjective");
    }

    #[test]
    fn first_and_last_indices() {
        let n = 10;
        assert_eq!(edge_index(0, 1, n), 0);
        assert_eq!(edge_index(n - 2, n - 1, n), num_pairs(n) - 1);
    }

    #[test]
    fn index_is_orientation_free() {
        assert_eq!(edge_index(3, 7, 16), edge_index(7, 3, 16));
    }

    proptest! {
        #[test]
        fn roundtrip_index(n in 2usize..200, seed in any::<u64>()) {
            let total = num_pairs(n);
            let idx = seed % total;
            let (x, y) = edge_from_index(idx, n);
            prop_assert!(x < y && y < n);
            prop_assert_eq!(edge_index(x, y, n), idx);
        }

        #[test]
        fn roundtrip_pair(n in 2usize..200, a in 0usize..200, b in 0usize..200) {
            let (a, b) = (a % n, b % n);
            prop_assume!(a != b);
            let idx = edge_index(a, b, n);
            let (x, y) = edge_from_index(idx, n);
            prop_assert_eq!((x, y), if a < b { (a, b) } else { (b, a) });
        }
    }
}

//! Graph statistics used by the experiment harness and examples:
//! degree summaries, density, eccentricity-style measures via BFS.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Degree summary of a graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m/n`).
    pub mean: f64,
}

/// Degree summary (`min = max = 0` and `mean = 0` for the empty graph).
pub fn degree_stats(g: &Graph) -> DegreeStats {
    if g.n() == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    let degs: Vec<usize> = (0..g.n()).map(|v| g.degree(v)).collect();
    DegreeStats {
        min: *degs.iter().min().unwrap(),
        max: *degs.iter().max().unwrap(),
        mean: 2.0 * g.m() as f64 / g.n() as f64,
    }
}

/// Whether the graph is near-regular in the Section 3 sense: every degree
/// is `⌊2m/n⌋` or `⌈2m/n⌉` (within `slack` of the band).
pub fn is_near_regular(g: &Graph, slack: usize) -> bool {
    if g.n() == 0 {
        return true;
    }
    let lo = (2 * g.m() / g.n()).saturating_sub(slack);
    let hi = 2 * g.m() / g.n() + 1 + slack;
    (0..g.n()).all(|v| (lo..=hi).contains(&g.degree(v)))
}

/// Edge density `m / C(n,2)` (0 for `n < 2`).
pub fn density(g: &Graph) -> f64 {
    if g.n() < 2 {
        return 0.0;
    }
    g.m() as f64 / crate::edge::num_pairs(g.n()) as f64
}

/// Eccentricity of `v` within its component (max BFS distance).
pub fn eccentricity(g: &Graph, v: usize) -> usize {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[v] = 0;
    queue.push_back(v);
    let mut far = 0;
    while let Some(u) = queue.pop_front() {
        for &w in g.neighbors(u) {
            let w = w as usize;
            if dist[w] == usize::MAX {
                dist[w] = dist[u] + 1;
                far = far.max(dist[w]);
                queue.push_back(w);
            }
        }
    }
    far
}

/// Diameter of a connected graph (`None` if disconnected or empty).
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.n() == 0 || !crate::connectivity::is_connected(g) {
        return None;
    }
    Some((0..g.n()).map(|v| eccentricity(g, v)).max().unwrap())
}

/// Whether the graph is a forest (`m = n − c`).
pub fn is_forest(g: &Graph) -> bool {
    g.m() == g.n() - crate::connectivity::component_count(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_stats_basics() {
        let g = generators::star(5);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-9);
        assert_eq!(
            degree_stats(&crate::Graph::new(0)),
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0
            }
        );
    }

    #[test]
    fn regularity_checks() {
        assert!(is_near_regular(&generators::cycle(8), 0));
        assert!(is_near_regular(&generators::circulant(10, &[1, 2]), 0));
        assert!(!is_near_regular(&generators::star(10), 0));
        assert!(is_near_regular(&generators::star(10), 10));
    }

    #[test]
    fn density_extremes() {
        assert_eq!(density(&generators::complete(6)), 1.0);
        assert_eq!(density(&crate::Graph::new(6)), 0.0);
        assert_eq!(density(&crate::Graph::new(1)), 0.0);
    }

    #[test]
    fn path_diameter() {
        assert_eq!(diameter(&generators::path(10)), Some(9));
        assert_eq!(diameter(&generators::cycle(10)), Some(5));
        assert_eq!(diameter(&crate::Graph::new(3)), None, "disconnected");
        assert_eq!(eccentricity(&generators::path(10), 0), 9);
        assert_eq!(eccentricity(&generators::path(10), 5), 5);
    }

    #[test]
    fn forest_detection() {
        assert!(is_forest(&generators::path(6)));
        assert!(is_forest(&crate::Graph::new(4)));
        assert!(!is_forest(&generators::cycle(4)));
    }

    #[test]
    fn new_generators_are_sane() {
        use crate::connectivity;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);

        let grid = generators::grid(4, 5);
        assert_eq!(grid.n(), 20);
        assert_eq!(grid.m(), 4 * 4 + 3 * 5);
        assert_eq!(diameter(&grid), Some(3 + 4));

        let bb = generators::barbell(4, 2);
        assert!(connectivity::is_connected(&bb));
        assert_eq!(connectivity::bridges(&bb).len(), 2);

        let cat = generators::caterpillar(5, 3);
        assert!(is_forest(&cat));
        assert_eq!(cat.n(), 20);
        assert_eq!(cat.m(), 19);

        let sw = generators::small_world(30, 2, 0.2, &mut rng);
        assert!(sw.m() > 0);
        let s = degree_stats(&sw);
        assert!(s.mean > 2.0);

        let reg = generators::near_regular(20, 4, &mut rng);
        assert!(degree_stats(&reg).max <= 4);
    }
}

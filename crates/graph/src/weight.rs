//! Edge weights with a lexicographic tie-break.
//!
//! The paper assumes edge weights are `O(log n)`-bit integers and, as is
//! standard for MST algorithms (Borůvka in particular), that they are
//! pairwise distinct. We realize distinctness with the classic perturbation:
//! a [`Weight`] compares by `(w, u, v)` where `(u, v)` is the canonical
//! (sorted) endpoint pair of the edge carrying it. This makes the MST unique,
//! so the distributed algorithms and the sequential references must agree on
//! the exact edge set, which is what the test suite checks.

use std::fmt;

/// Raw weight value reserved to mean "no edge" (`∞` in Algorithm 1 of the
/// paper, which turns an arbitrary graph into a weighted clique by assigning
/// weight `∞` to non-edges).
pub const INFINITE_W: u64 = u64::MAX;

/// A totally ordered edge weight: raw integer weight plus the canonical
/// endpoint pair as a tie-break.
///
/// Two distinct edges never compare equal, even with equal raw weights,
/// which is exactly the distinct-weights assumption MST theory needs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Weight {
    /// Raw integer weight ([`INFINITE_W`] encodes `∞`).
    pub w: u64,
    /// Smaller endpoint of the carrying edge.
    pub u: u32,
    /// Larger endpoint of the carrying edge.
    pub v: u32,
}

impl Weight {
    /// Weight of the edge `{a, b}` with raw value `w`.
    ///
    /// The endpoints are canonicalized so that `Weight::new(w, a, b)` and
    /// `Weight::new(w, b, a)` are identical.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops carry no weight in this model).
    pub fn new(w: u64, a: usize, b: usize) -> Self {
        assert_ne!(a, b, "self-loops are not weighted edges");
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        Weight {
            w,
            u: u as u32,
            v: v as u32,
        }
    }

    /// The `∞` weight Algorithm 1 assigns to clique links that are not input
    /// edges.
    pub fn infinite(a: usize, b: usize) -> Self {
        Self::new(INFINITE_W, a, b)
    }

    /// Whether this is an `∞` (non-edge) weight.
    pub fn is_infinite(&self) -> bool {
        self.w == INFINITE_W
    }

    /// Canonical endpoints `(u, v)` with `u < v`.
    pub fn endpoints(&self) -> (usize, usize) {
        (self.u as usize, self.v as usize)
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞@({},{})", self.u, self.v)
        } else {
            write!(f, "{}@({},{})", self.w, self.u, self.v)
        }
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_endpoints() {
        assert_eq!(Weight::new(5, 3, 1), Weight::new(5, 1, 3));
        assert_eq!(Weight::new(5, 1, 3).endpoints(), (1, 3));
    }

    #[test]
    fn orders_by_raw_weight_first() {
        assert!(Weight::new(1, 7, 9) < Weight::new(2, 0, 1));
    }

    #[test]
    fn breaks_ties_by_endpoints() {
        assert!(Weight::new(4, 0, 1) < Weight::new(4, 0, 2));
        assert!(Weight::new(4, 0, 2) < Weight::new(4, 1, 2));
    }

    #[test]
    fn distinct_edges_never_compare_equal() {
        let a = Weight::new(9, 2, 5);
        let b = Weight::new(9, 2, 6);
        assert_ne!(a, b);
        assert!(a < b || b < a);
    }

    #[test]
    fn infinite_dominates_everything_finite() {
        let inf = Weight::infinite(0, 1);
        assert!(inf.is_infinite());
        assert!(Weight::new(u64::MAX - 1, 100, 200) < inf);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        let _ = Weight::new(1, 4, 4);
    }

    #[test]
    fn debug_output_is_nonempty() {
        assert!(!format!("{:?}", Weight::new(3, 1, 2)).is_empty());
        assert!(format!("{:?}", Weight::infinite(1, 2)).contains('∞'));
    }
}

//! Disjoint-set forest (union by rank, path halving).
//!
//! Used by every Borůvka/Kruskal-style routine in the workspace, including
//! the local computations the coordinator performs in Algorithm 2
//! (SKETCHANDSPAN) and Algorithm 4 (SQ-MST).

/// A disjoint-set forest over elements `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` iff they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Canonical labeling: for each element, the *minimum* element of its set.
    ///
    /// The paper designates the minimum-ID node of a component as its leader,
    /// so this is the labeling every component-graph step uses.
    pub fn min_labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut min_of_root = vec![usize::MAX; n];
        for x in 0..n {
            let r = self.find(x);
            if x < min_of_root[r] {
                min_of_root[r] = x;
            }
        }
        (0..n).map(|x| min_of_root[self.find(x)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn min_labels_are_set_minima() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(3, 4);
        uf.union(0, 1);
        let labels = uf.min_labels();
        assert_eq!(labels, vec![0, 0, 2, 3, 3, 3]);
    }

    #[test]
    fn empty_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }

    proptest! {
        /// Union-find agrees with a naive label-propagation implementation.
        #[test]
        fn matches_naive(n in 1usize..60, ops in proptest::collection::vec((0usize..60, 0usize..60), 0..120)) {
            let mut uf = UnionFind::new(n);
            let mut naive: Vec<usize> = (0..n).collect();
            for (a, b) in ops {
                let (a, b) = (a % n, b % n);
                uf.union(a, b);
                let (la, lb) = (naive[a], naive[b]);
                if la != lb {
                    for l in naive.iter_mut() {
                        if *l == lb { *l = la; }
                    }
                }
            }
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(uf.same(a, b), naive[a] == naive[b]);
                }
            }
            let mut distinct: Vec<usize> = naive.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(uf.set_count(), distinct.len());
        }
    }
}

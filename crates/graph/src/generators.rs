//! Input-graph families for tests and experiments.
//!
//! These cover the workloads the experiments in EXPERIMENTS.md run on:
//! Erdős–Rényi graphs, random connected graphs, complete weighted cliques
//! (the native MST input of the model), circulants (the biconnected building
//! blocks of the Section 3 lower bound), planted bipartite / odd-cycle
//! inputs for Remark 5, and graphs with a prescribed number of components.

use crate::edge::Edge;
use crate::graph::{Graph, WGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Path `0 — 1 — … — n-1`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v - 1, v);
    }
    g
}

/// Cycle on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(n - 1, 0);
    g
}

/// Star with center `0` and `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    g
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// Circulant graph: vertex `j` is connected to `j ± o (mod n)` for every
/// offset `o` in `offsets`.
///
/// Circulants with offsets `{1, …, k}` are the near-regular biconnected
/// graphs the Section 3 construction builds `G_U` and `G_V` from.
///
/// # Panics
///
/// Panics if an offset is `0` or `≥ n`.
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    let mut g = Graph::new(n);
    for &o in offsets {
        assert!(o > 0 && o < n, "offset must be in 1..n");
        for j in 0..n {
            let k = (j + o) % n;
            if k != j {
                g.add_edge(j, k);
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Weighted `G(n, p)` with raw weights uniform in `0..max_w`.
///
/// # Panics
///
/// Panics if `max_w == 0`.
pub fn gnp_weighted<R: Rng>(n: usize, p: f64, max_w: u64, rng: &mut R) -> WGraph {
    assert!(max_w > 0, "max_w must be positive");
    let mut g = WGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v, rng.gen_range(0..max_w));
            }
        }
    }
    g
}

/// A uniformly random spanning tree on `n` vertices (random Prüfer sequence).
pub fn random_spanning_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    match n {
        0 | 1 => return g,
        2 => {
            g.add_edge(0, 1);
            return g;
        }
        _ => {}
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    // Standard Prüfer decoding with a scan pointer + "leaf" cursor.
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in &prufer {
        g.add_edge(leaf, x);
        degree[x] -= 1;
        if degree[x] == 1 && x < ptr {
            leaf = x;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    // Two vertices of degree 1 remain; `leaf` is one of them.
    let last = (0..n).rev().find(|&v| degree[v] == 1 && v != leaf).unwrap();
    g.add_edge(leaf, last);
    g
}

/// A connected graph: a random spanning tree plus `G(n, p)` extras.
pub fn random_connected_graph<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = random_spanning_tree(n, rng);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A connected weighted graph with raw weights uniform in `0..max_w`.
///
/// # Panics
///
/// Panics if `max_w == 0`.
pub fn random_connected_wgraph<R: Rng>(n: usize, p: f64, max_w: u64, rng: &mut R) -> WGraph {
    assert!(max_w > 0, "max_w must be positive");
    let skeleton = random_connected_graph(n, p, rng);
    let mut g = WGraph::new(n);
    for e in skeleton.edges() {
        g.add_edge(e.u as usize, e.v as usize, rng.gen_range(0..max_w));
    }
    g
}

/// A complete weighted clique with *distinct* raw weights: the weights are a
/// random permutation of `0..C(n,2)`.
///
/// This is the canonical input of the Lotker et al. MST algorithm and of
/// EXACT-MST (Algorithm 3), whose input is "an edge-weighted clique".
pub fn complete_wgraph<R: Rng>(n: usize, rng: &mut R) -> WGraph {
    let mut weights: Vec<u64> = (0..crate::edge::num_pairs(n)).collect();
    weights.shuffle(rng);
    let mut g = WGraph::new(n);
    let mut i = 0;
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, weights[i]);
            i += 1;
        }
    }
    g
}

/// A bipartite graph: vertices split in two halves, each candidate
/// cross-edge kept with probability `p`.
pub fn planted_bipartite<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let half = n / 2;
    let mut g = Graph::new(n);
    for u in 0..half {
        for v in half..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A connected non-bipartite graph: an odd cycle through all vertices plus
/// `G(n, p)` extras.
///
/// # Panics
///
/// Panics if `n < 3` or `n` is even (the base cycle must be odd).
pub fn odd_cycle_plus<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n >= 3 && n % 2 == 1, "need an odd n ≥ 3");
    let mut g = cycle(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A graph with exactly `k` connected components: `k` random connected blocks
/// of near-equal size on a random vertex relabeling.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn with_k_components<R: Rng>(n: usize, k: usize, p: f64, rng: &mut R) -> Graph {
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let mut labels: Vec<usize> = (0..n).collect();
    labels.shuffle(rng);
    let mut g = Graph::new(n);
    let mut start = 0;
    for i in 0..k {
        let size = n / k + usize::from(i < n % k);
        let block = &labels[start..start + size];
        if size > 1 {
            let sub = random_connected_graph(size, p, rng);
            for e in sub.edges() {
                g.add_edge(block[e.u as usize], block[e.v as usize]);
            }
        }
        start += size;
    }
    g
}

/// Assigns raw weights uniform in `0..max_w` to an unweighted graph.
///
/// # Panics
///
/// Panics if `max_w == 0`.
pub fn with_random_weights<R: Rng>(g: &Graph, max_w: u64, rng: &mut R) -> WGraph {
    assert!(max_w > 0, "max_w must be positive");
    let mut out = WGraph::new(g.n());
    for e in g.edges() {
        out.add_edge(e.u as usize, e.v as usize, rng.gen_range(0..max_w));
    }
    out
}

/// Disjoint union: `b`'s vertices are shifted past `a`'s.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let mut g = Graph::new(a.n() + b.n());
    for e in a.edges() {
        g.add_edge(e.u as usize, e.v as usize);
    }
    for e in b.edges() {
        g.add_edge(a.n() + e.u as usize, a.n() + e.v as usize);
    }
    g
}

/// All edges of `g` as a `Vec<Edge>` after a random shuffle — handy when a
/// test needs an arbitrary edge order.
pub fn shuffled_edges<R: Rng>(g: &Graph, rng: &mut R) -> Vec<Edge> {
    let mut es = g.edges();
    es.shuffle(rng);
    es
}

/// 2-D grid graph on `rows × cols` vertices (vertex `r·cols + c`).
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols);
            }
        }
    }
    g
}

/// Barbell: two cliques of size `k` joined by a path of `bridge` edges.
/// The classic "two dense communities, thin cut" shape.
///
/// # Panics
///
/// Panics if `k < 3` or `bridge == 0`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 3, "bells need at least 3 vertices");
    assert!(bridge >= 1, "need at least one bridge edge");
    let n = 2 * k + bridge - 1;
    let mut g = Graph::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u, v);
        }
    }
    let right = k + bridge - 1;
    for u in right..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    // Path from vertex k−1 through the bridge vertices into the right bell.
    let mut prev = k - 1;
    for b in 0..bridge {
        let next = k + b;
        g.add_edge(prev, next.min(n - 1));
        prev = next.min(n - 1);
    }
    g
}

/// A caterpillar: a spine path of `spine` vertices, each with `legs`
/// pendant leaves — a tree that stresses Borůvka's star merges.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "need a spine");
    let n = spine * (1 + legs);
    let mut g = Graph::new(n);
    for s in 1..spine {
        g.add_edge(s - 1, s);
    }
    for s in 0..spine {
        for l in 0..legs {
            g.add_edge(s, spine + s * legs + l);
        }
    }
    g
}

/// A Watts–Strogatz-style small world: ring lattice with offsets
/// `1..=k`, each edge rewired to a random chord with probability `beta`.
///
/// # Panics
///
/// Panics if `k == 0`, `2k ≥ n`, or `beta ∉ [0, 1]`.
pub fn small_world<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k >= 1 && 2 * k < n, "need 1 ≤ k < n/2");
    assert!((0.0..=1.0).contains(&beta), "beta out of range");
    let mut g = Graph::new(n);
    for o in 1..=k {
        for j in 0..n {
            let (a, b) = (j, (j + o) % n);
            if rng.gen_bool(beta) {
                // Rewire: random chord from a (retry on collisions).
                for _ in 0..8 {
                    let t = rng.gen_range(0..n);
                    if t != a && g.add_edge(a, t) {
                        break;
                    }
                }
            } else {
                g.add_edge(a, b);
            }
        }
    }
    g
}

/// A random near-regular graph: `d` perfect-matching-ish rounds over a
/// shuffled vertex list (multi-edges and self-pairs skipped, so degrees
/// are `≤ d` and concentrate at `d`).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn near_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "need at least 2 vertices");
    let mut g = Graph::new(n);
    for _ in 0..d {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for pair in order.chunks(2) {
            if let [a, b] = *pair {
                g.add_edge(a, b);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn basic_shapes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
    }

    #[test]
    fn circulant_degrees() {
        let g = circulant(10, &[1, 2]);
        for v in 0..10 {
            assert_eq!(g.degree(v), 4, "offsets {{1,2}} give a 4-regular graph");
        }
        assert_eq!(g.m(), 20);
    }

    #[test]
    fn circulant_with_wrapping_offsets_dedups() {
        // n=4, offsets {1, 3}: j+1 and j+3 ≡ j-1 give the same cycle edges.
        let g = circulant(4, &[1, 3]);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn spanning_tree_is_a_tree() {
        for seed in 0..20 {
            let n = 2 + (seed as usize % 50);
            let t = random_spanning_tree(n, &mut rng(seed));
            assert_eq!(t.m(), n - 1);
            assert_eq!(connectivity::component_count(&t), 1, "n={n} seed={seed}");
        }
    }

    #[test]
    fn tiny_spanning_trees() {
        assert_eq!(random_spanning_tree(0, &mut rng(0)).m(), 0);
        assert_eq!(random_spanning_tree(1, &mut rng(0)).m(), 0);
        assert_eq!(random_spanning_tree(2, &mut rng(0)).m(), 1);
        let t3 = random_spanning_tree(3, &mut rng(0));
        assert_eq!(t3.m(), 2);
    }

    #[test]
    fn random_connected_really_connected() {
        let g = random_connected_graph(40, 0.05, &mut rng(3));
        assert_eq!(connectivity::component_count(&g), 1);
    }

    #[test]
    fn complete_wgraph_has_distinct_weights() {
        let g = complete_wgraph(8, &mut rng(4));
        let mut ws: Vec<u64> = g.edges().iter().map(|e| e.w).collect();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), 28);
    }

    #[test]
    fn planted_bipartite_is_bipartite() {
        let g = planted_bipartite(30, 0.3, &mut rng(5));
        assert!(connectivity::is_bipartite(&g));
    }

    #[test]
    fn odd_cycle_plus_is_not_bipartite() {
        let g = odd_cycle_plus(31, 0.05, &mut rng(6));
        assert!(!connectivity::is_bipartite(&g));
        assert_eq!(connectivity::component_count(&g), 1);
    }

    #[test]
    fn with_k_components_exact() {
        for k in [1usize, 2, 3, 7] {
            let g = with_k_components(41, k, 0.2, &mut rng(7 + k as u64));
            assert_eq!(connectivity::component_count(&g), k, "k={k}");
        }
    }

    #[test]
    fn disjoint_union_shifts() {
        let g = disjoint_union(&path(3), &path(2));
        assert_eq!(g.n(), 5);
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(2, 3));
        assert_eq!(connectivity::component_count(&g), 2);
    }

    #[test]
    fn gnp_extremes() {
        let empty = gnp(10, 0.0, &mut rng(8));
        assert_eq!(empty.m(), 0);
        let full = gnp(10, 1.0, &mut rng(9));
        assert_eq!(full.m(), 45);
    }

    #[test]
    fn weighted_gnp_weights_in_range() {
        let g = gnp_weighted(20, 0.5, 17, &mut rng(10));
        for e in g.edges() {
            assert!(e.w < 17);
        }
    }
}

//! Property test: for *arbitrary* node programs, the `cc-runtime` serial,
//! parallel, and k-machine engines deliver bit-identical inboxes and
//! meter identical cost — and all agree with the reference `CliqueNet`
//! driver.
//!
//! The generated program is adversarial on purpose: every node sends a
//! pseudo-random (but budget-respecting) pattern of variable-width
//! messages each round and logs every envelope it receives, so any
//! ordering, metering, or budget divergence between engines shows up as a
//! log or cost mismatch.

use cc_net::program::{run_program, NodeProgram};
use cc_net::{CliqueNet, Envelope, NetConfig, Outbox};
use cc_runtime::{adapt_all, Runtime};
use proptest::prelude::*;

/// SplitMix64 finalizer — gives every (instance, node, round, slot) an
/// independent pseudo-random draw without any shared state.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A node that chats pseudo-randomly for a fixed number of rounds and logs
/// everything it hears. The full observable state is `log`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Chatter {
    instance: u64,
    rounds: u64,
    attempts: u64,
    elapsed: u64,
    n: usize,
    log: Vec<(u64, usize, Vec<u64>)>,
}

impl Chatter {
    fn new(instance: u64, rounds: u64, attempts: u64) -> Self {
        Chatter {
            instance,
            rounds,
            attempts,
            elapsed: 0,
            n: 0,
            log: Vec::new(),
        }
    }

    fn chat(&self, me: usize, n: usize, out: &mut Outbox<'_, Vec<u64>>) {
        for slot in 0..self.attempts {
            let h = mix(self
                .instance
                .wrapping_mul(0x517C_C1B7_2722_0A95)
                .wrapping_add(mix((me as u64) << 32 | self.elapsed))
                .wrapping_add(slot));
            let dst = (h % n as u64) as usize;
            let words = 1 + (h >> 8) % 3;
            if dst == me || out.budget_left(dst) < words {
                continue;
            }
            let payload: Vec<u64> = (0..words).map(|i| mix(h.wrapping_add(i))).collect();
            out.send(dst, payload).expect("send fits the budget");
        }
    }
}

impl NodeProgram for Chatter {
    type Msg = Vec<u64>;

    fn start(&mut self, me: usize, n: usize, out: &mut Outbox<'_, Vec<u64>>) {
        self.n = n;
        self.chat(me, n, out);
    }

    fn round(
        &mut self,
        me: usize,
        inbox: &[Envelope<Vec<u64>>],
        out: &mut Outbox<'_, Vec<u64>>,
    ) -> bool {
        for env in inbox {
            self.log.push((self.elapsed, env.src, env.msg.clone()));
        }
        self.elapsed += 1;
        if self.elapsed < self.rounds {
            self.chat(me, self.n, out);
            false
        } else {
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn backends_are_bit_identical(
        n in 2usize..24,
        rounds in 1u64..6,
        attempts in 0u64..12,
        instance in 0u64..u64::MAX,
        k_seed in 0u64..u64::MAX,
    ) {
        let cfg = NetConfig::kt1(n);
        let fresh = || -> Vec<Chatter> {
            (0..n).map(|_| Chatter::new(instance, rounds, attempts)).collect()
        };

        let mut net: CliqueNet<Vec<u64>> = CliqueNet::new(cfg.clone());
        let reference = run_program(&mut net, fresh(), 1000).unwrap();

        let mut serial = Runtime::serial(cfg.clone());
        let s = serial.run(adapt_all(fresh()), 1000).unwrap();

        let mut parallel = Runtime::parallel_with_threads(cfg.clone(), 3);
        let p = parallel.run(adapt_all(fresh()), 1000).unwrap();

        let ref_logs: Vec<_> = reference.iter().map(|c| c.log.clone()).collect();
        let s_logs: Vec<_> = s.iter().map(|a| a.0.log.clone()).collect();
        let p_logs: Vec<_> = p.iter().map(|a| a.0.log.clone()).collect();
        prop_assert_eq!(&s_logs, &ref_logs);
        prop_assert_eq!(&p_logs, &ref_logs);
        prop_assert_eq!(serial.cost(), net.cost());
        prop_assert_eq!(parallel.cost(), net.cost());

        // The k-machine engine at the extreme mappings (k = n recovers
        // the clique, k = 1 co-locates everything) and one random k in
        // between: the mapping must change no log and no logical cost,
        // only the machine-level accounting.
        let k_mid = 1 + (k_seed % n as u64) as usize;
        for k in [n, 1, k_mid] {
            let mut km = Runtime::kmachine(cfg.clone(), k);
            let out = km.run(adapt_all(fresh()), 1000).unwrap();
            let km_logs: Vec<_> = out.iter().map(|a| a.0.log.clone()).collect();
            prop_assert_eq!(&km_logs, &ref_logs, "k={} logs drifted", k);
            prop_assert_eq!(km.cost(), net.cost(), "k={} cost drifted", k);
            let stats = km.backend().stats();
            prop_assert_eq!(stats.logical_rounds, km.cost().rounds);
            prop_assert!(stats.machine_rounds >= stats.logical_rounds);
            if k == n {
                // Every logical link is its own machine pair, and send
                // admission already caps each link at the bandwidth: the
                // clique's round count is recovered exactly.
                prop_assert_eq!(stats.machine_rounds, stats.logical_rounds);
                prop_assert_eq!(stats.local_words, 0);
            }
            if k == 1 {
                prop_assert_eq!(stats.machine_rounds, stats.logical_rounds);
                prop_assert_eq!(stats.remote_words, 0);
            }
        }
    }
}

//! The Congested Clique network simulator.
//!
//! This crate enforces the model of Section 1.2 of Hegeman et al. (PODC
//! 2015): `n` machines on a complete network, synchronous rounds, a
//! (possibly different) message of `O(log n)` bits per link per round, and
//! the KT0 / KT1 initial-knowledge variants. It meters the two complexity
//! measures the paper studies — rounds and messages — plus words and bits
//! for bandwidth ablations.
//!
//! * [`NetConfig`] — size, bandwidth (in `⌈log₂ n⌉`-bit words), knowledge
//!   variant, seed.
//! * [`CliqueNet`] — the synchronous stepper with per-link budget
//!   enforcement ([`CliqueNet::step`]) and silent-round fast-forwarding.
//! * [`Counters`] / [`Cost`] — metering with named scopes so experiments
//!   can attribute cost to algorithm phases.
//! * [`Wire`] — message-size declaration every payload type provides.
//! * [`PortMap`] — the hidden port permutation of the KT0 variant.
//! * [`ModelSpec`] (re-exported from `cc-model`) — the bandwidth /
//!   link-mode / mapping axes as data; [`NetConfig::from_model`] binds a
//!   spec to a clique size and [`SendRules`] enforces it at send time.
//!
//! See [`net`] for the execution model and a worked example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
pub mod config;
pub mod counters;
pub mod error;
pub mod fault;
pub mod net;
pub mod packet;
pub mod ports;
pub mod program;
pub mod wire;

pub use batch::{BatchEntry, RoundBatches};
pub use budget::{LinkUse, SendRules};
pub use cc_model::{LinkMode, Mapping, ModelError, ModelSpec};
pub use config::{Knowledge, NetConfig, DEFAULT_LINK_WORDS};
pub use counters::{Cost, Counters};
pub use error::NetError;
pub use fault::{apply_faults, FaultDecision, FaultInjector, FaultOutcome, FaultRecord, NoFaults};
pub use net::{CliqueNet, Envelope, Outbox};
pub use packet::{WordVec, INLINE_WORDS};
pub use ports::PortMap;
pub use program::{run_program, NodeProgram};
pub use wire::{decode_frame, encode_frame, Wire, WireError};

//! [`WordVec`]: a word buffer with inline storage for small payloads.
//!
//! Almost every message the paper's algorithms send is tiny — one value
//! word in an all-to-all share, a `[dst, src, payload]` routed frame, a
//! three-word sketch fragment. Carrying those in a `Vec<u64>` costs one
//! heap allocation **per message**, and at `n = 4096` a single all-to-all
//! is 16.7 million messages: the allocator, not the simulator, dominates
//! wall time. `WordVec` stores up to [`INLINE_WORDS`] words inline and
//! only spills to a heap `Vec` beyond that, so the hot collectives send
//! without touching the allocator at all.
//!
//! The type is deliberately a drop-in for `Vec<u64>` where payloads are
//! concerned: it derefs to `[u64]`, compares against `Vec<u64>` and
//! slices, and its [`Wire`] accounting is **bit-identical** to
//! `Vec<u64>`'s (`words = len.max(1)`, same corruption index math), so
//! swapping it in cannot move any model cost.

use crate::wire::Wire;

/// Words stored inline before spilling to the heap.
///
/// Three words cover the common frames: one-word collective payloads,
/// `(key, aux)` pairs, and `[final_dst, orig_src, word]` routed packets.
pub const INLINE_WORDS: usize = 3;

#[derive(Clone, Debug)]
enum Repr {
    /// `len ≤ INLINE_WORDS` words stored in place; no heap involvement.
    Inline { len: u8, buf: [u64; INLINE_WORDS] },
    /// Spilled representation for larger payloads.
    Heap(Vec<u64>),
    /// Immutable shared payload: cloning bumps a refcount instead of
    /// copying. This is the broadcast shape — one chunk fanned out to
    /// `n − 1` receivers — where per-message heap clones would otherwise
    /// dominate the round. Any mutation copies out to `Heap` first
    /// (copy-on-write), so sharing is invisible to callers.
    Shared(std::sync::Arc<[u64]>),
}

/// A vector of `⌈log₂ n⌉`-bit words with small-buffer optimization.
///
/// See the [module docs](self) for why this exists. Construct with
/// [`WordVec::one`] / [`WordVec::of`] on hot paths (no allocation for
/// `len ≤ INLINE_WORDS`), or via `From<Vec<u64>>` / `collect()` where
/// convenience matters more.
#[derive(Clone, Debug)]
pub struct WordVec {
    repr: Repr,
}

impl WordVec {
    /// An empty buffer (inline, allocation-free).
    #[must_use]
    pub const fn new() -> Self {
        WordVec {
            repr: Repr::Inline {
                len: 0,
                buf: [0; INLINE_WORDS],
            },
        }
    }

    /// A single-word buffer (inline, allocation-free) — the shape of
    /// most collective payloads.
    #[must_use]
    pub const fn one(w: u64) -> Self {
        let mut buf = [0; INLINE_WORDS];
        buf[0] = w;
        WordVec {
            repr: Repr::Inline { len: 1, buf },
        }
    }

    /// Copies `words` into a new buffer; inline when it fits.
    #[must_use]
    pub fn of(words: &[u64]) -> Self {
        if words.len() <= INLINE_WORDS {
            let mut buf = [0; INLINE_WORDS];
            buf[..words.len()].copy_from_slice(words);
            WordVec {
                repr: Repr::Inline {
                    len: words.len() as u8,
                    buf,
                },
            }
        } else {
            WordVec {
                repr: Repr::Heap(words.to_vec()),
            }
        }
    }

    /// A shared (refcounted) buffer: clones are O(1) refcount bumps, not
    /// word copies. Use for payloads fanned out to many receivers
    /// (broadcasts); small payloads stay inline, where plain copies are
    /// already free.
    #[must_use]
    pub fn shared(words: &[u64]) -> Self {
        if words.len() <= INLINE_WORDS {
            WordVec::of(words)
        } else {
            WordVec {
                repr: Repr::Shared(std::sync::Arc::from(words)),
            }
        }
    }

    /// Like [`WordVec::shared`] but takes ownership of an existing vector.
    #[must_use]
    pub fn shared_from_vec(words: Vec<u64>) -> Self {
        if words.len() <= INLINE_WORDS {
            WordVec::of(&words)
        } else {
            WordVec {
                repr: Repr::Shared(std::sync::Arc::from(words)),
            }
        }
    }

    /// An empty buffer that can hold `cap` words before reallocating;
    /// stays inline when `cap ≤ INLINE_WORDS`.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        if cap <= INLINE_WORDS {
            WordVec::new()
        } else {
            WordVec {
                repr: Repr::Heap(Vec::with_capacity(cap)),
            }
        }
    }

    /// Number of words held.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
            Repr::Shared(a) => a.len(),
        }
    }

    /// `true` when no words are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The words as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
            Repr::Shared(a) => a,
        }
    }

    /// The words as a mutable slice (copies a shared buffer out first).
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        if let Repr::Shared(a) = &self.repr {
            self.repr = Repr::Heap(a.to_vec());
        }
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
            Repr::Shared(_) => unreachable!("shared repr copied out above"),
        }
    }

    /// Appends one word, spilling to the heap past [`INLINE_WORDS`].
    pub fn push(&mut self, w: u64) {
        if let Repr::Shared(a) = &self.repr {
            self.repr = Repr::Heap(a.to_vec());
        }
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if (*len as usize) < INLINE_WORDS {
                    buf[*len as usize] = w;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_WORDS * 2);
                    v.extend_from_slice(buf);
                    v.push(w);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(w),
            Repr::Shared(_) => unreachable!("shared repr copied out above"),
        }
    }

    /// Appends all of `words`, spilling once if the result outgrows the
    /// inline buffer.
    pub fn extend_from_slice(&mut self, words: &[u64]) {
        if let Repr::Shared(a) = &self.repr {
            self.repr = Repr::Heap(a.to_vec());
        }
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let cur = *len as usize;
                if cur + words.len() <= INLINE_WORDS {
                    buf[cur..cur + words.len()].copy_from_slice(words);
                    *len = (cur + words.len()) as u8;
                } else {
                    let mut v = Vec::with_capacity(cur + words.len());
                    v.extend_from_slice(&buf[..cur]);
                    v.extend_from_slice(words);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.extend_from_slice(words),
            Repr::Shared(_) => unreachable!("shared repr copied out above"),
        }
    }

    /// Drops all words. A spilled buffer keeps its heap capacity, same
    /// as `Vec::clear`; a shared buffer is released.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Heap(v) => v.clear(),
            Repr::Shared(_) => *self = WordVec::new(),
        }
    }

    /// Converts into a plain `Vec<u64>` (allocates when inline; copies a
    /// shared buffer unless this was the last reference).
    #[must_use]
    pub fn into_vec(self) -> Vec<u64> {
        match self.repr {
            Repr::Inline { len, buf } => buf[..len as usize].to_vec(),
            Repr::Heap(v) => v,
            Repr::Shared(a) => a.to_vec(),
        }
    }
}

impl Default for WordVec {
    fn default() -> Self {
        WordVec::new()
    }
}

impl std::ops::Deref for WordVec {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for WordVec {
    fn deref_mut(&mut self) -> &mut [u64] {
        self.as_mut_slice()
    }
}

impl PartialEq for WordVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WordVec {}

impl PartialOrd for WordVec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WordVec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for WordVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<Vec<u64>> for WordVec {
    fn eq(&self, other: &Vec<u64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<WordVec> for Vec<u64> {
    fn eq(&self, other: &WordVec) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u64]> for WordVec {
    fn eq(&self, other: &[u64]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u64; N]> for WordVec {
    fn eq(&self, other: &[u64; N]) -> bool {
        self.as_slice() == other
    }
}

impl From<Vec<u64>> for WordVec {
    /// Takes ownership without copying: an already-heap-allocated vector
    /// stays heap (re-inlining would trade a move for a copy + free).
    fn from(v: Vec<u64>) -> Self {
        WordVec {
            repr: Repr::Heap(v),
        }
    }
}

impl From<&[u64]> for WordVec {
    fn from(words: &[u64]) -> Self {
        WordVec::of(words)
    }
}

impl<const N: usize> From<[u64; N]> for WordVec {
    fn from(words: [u64; N]) -> Self {
        WordVec::of(&words)
    }
}

impl From<WordVec> for Vec<u64> {
    fn from(wv: WordVec) -> Self {
        wv.into_vec()
    }
}

impl FromIterator<u64> for WordVec {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut wv = WordVec::new();
        wv.extend(iter);
        wv
    }
}

impl Extend<u64> for WordVec {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for w in iter {
            self.push(w);
        }
    }
}

/// Owning iterator over a [`WordVec`]'s words.
pub struct WordVecIntoIter {
    repr: IterRepr,
}

enum IterRepr {
    Inline {
        buf: [u64; INLINE_WORDS],
        pos: u8,
        len: u8,
    },
    Heap(std::vec::IntoIter<u64>),
    Shared {
        arc: std::sync::Arc<[u64]>,
        pos: usize,
    },
}

impl Iterator for WordVecIntoIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        match &mut self.repr {
            IterRepr::Inline { buf, pos, len } => {
                if pos < len {
                    let w = buf[*pos as usize];
                    *pos += 1;
                    Some(w)
                } else {
                    None
                }
            }
            IterRepr::Heap(it) => it.next(),
            IterRepr::Shared { arc, pos } => {
                let w = arc.get(*pos).copied();
                *pos += w.is_some() as usize;
                w
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.repr {
            IterRepr::Inline { pos, len, .. } => (*len - *pos) as usize,
            IterRepr::Heap(it) => it.len(),
            IterRepr::Shared { arc, pos } => arc.len() - *pos,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for WordVecIntoIter {}

impl IntoIterator for WordVec {
    type Item = u64;
    type IntoIter = WordVecIntoIter;

    fn into_iter(self) -> WordVecIntoIter {
        WordVecIntoIter {
            repr: match self.repr {
                Repr::Inline { len, buf } => IterRepr::Inline { buf, pos: 0, len },
                Repr::Heap(v) => IterRepr::Heap(v.into_iter()),
                Repr::Shared(a) => IterRepr::Shared { arc: a, pos: 0 },
            },
        }
    }
}

impl<'a> IntoIterator for &'a WordVec {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Bit-identical to `Vec<u64>`'s accounting: an empty payload still
/// occupies one word on the wire, and corruption picks the same word
/// index (`(bit >> 6) % len`) and flips the same bit. The simulator's
/// metered costs therefore cannot differ between the two payload types.
impl Wire for WordVec {
    fn words(&self) -> u64 {
        (self.len() as u64).max(1)
    }

    fn corrupt_bit(&mut self, bit: u64) -> bool {
        if self.is_empty() {
            return false;
        }
        let idx = ((bit >> 6) % self.len() as u64) as usize;
        self.as_mut_slice()[idx].corrupt_bit(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut wv = WordVec::new();
        assert!(wv.is_empty());
        for w in 0..INLINE_WORDS as u64 {
            wv.push(w);
            assert!(matches!(wv.repr, Repr::Inline { .. }), "len {} inline", w);
        }
        wv.push(99);
        assert!(matches!(wv.repr, Repr::Heap(_)), "spills past INLINE_WORDS");
        assert_eq!(wv, vec![0, 1, 2, 99]);
    }

    #[test]
    fn constructors_match_vec_semantics() {
        assert_eq!(WordVec::one(7), vec![7]);
        assert_eq!(WordVec::of(&[1, 2]), vec![1, 2]);
        assert_eq!(WordVec::of(&[1, 2, 3, 4, 5]), vec![1, 2, 3, 4, 5]);
        assert_eq!(WordVec::from(vec![9, 8]), vec![9, 8]);
        let collected: WordVec = (0..6).collect();
        assert_eq!(collected, (0..6).collect::<Vec<u64>>());
    }

    #[test]
    fn shared_repr_is_copy_on_write_and_wire_identical() {
        let words: Vec<u64> = (0..10).collect();
        let a = WordVec::shared(&words);
        assert!(matches!(a.repr, Repr::Shared(_)));
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.words(), WordVec::of(&words).words());
        // Mutating one clone must not affect the other (copy-on-write).
        let mut c = a.clone();
        c.as_mut_slice()[0] = 99;
        assert_eq!(c[0], 99);
        assert_eq!(a[0], 0);
        let mut d = b.clone();
        d.push(77);
        assert_eq!(d.len(), 11);
        assert_eq!(b.len(), 10);
        // Small shared payloads stay inline (cheaper than refcounting).
        assert!(matches!(WordVec::shared(&[1, 2]).repr, Repr::Inline { .. }));
        assert_eq!(WordVec::shared_from_vec(words.clone()), words);
        assert_eq!(a.into_vec(), words);
    }

    #[test]
    fn extend_from_slice_crosses_the_inline_boundary() {
        let mut wv = WordVec::of(&[1, 2]);
        wv.extend_from_slice(&[3, 4, 5]);
        assert_eq!(wv, vec![1, 2, 3, 4, 5]);
        let mut stays = WordVec::of(&[1]);
        stays.extend_from_slice(&[2, 3]);
        assert!(matches!(stays.repr, Repr::Inline { .. }));
        assert_eq!(stays, vec![1, 2, 3]);
    }

    #[test]
    fn wire_accounting_is_bit_identical_to_vec() {
        for len in 0..6usize {
            let data: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let wv = WordVec::of(&data);
            assert_eq!(wv.words(), data.words(), "words at len {}", len);
            for bit in [0u64, 1, 63, 64, 65, 129, 1000] {
                let mut a = wv.clone();
                let mut b = data.clone();
                assert_eq!(a.corrupt_bit(bit), b.corrupt_bit(bit), "flip {}", bit);
                assert_eq!(a, b, "post-corruption contents, bit {}", bit);
            }
        }
    }

    #[test]
    fn ordering_and_iteration_follow_slice_semantics() {
        let a = WordVec::of(&[1, 2]);
        let b = WordVec::of(&[1, 3]);
        assert!(a < b);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(b.clone().into_iter().collect::<Vec<_>>(), vec![1, 3]);
        let big: WordVec = (0..10).collect();
        assert_eq!(big.into_iter().sum::<u64>(), 45);
        assert_eq!(&a[..], &[1, 2]);
        assert_eq!(a[1], 2);
    }

    #[test]
    fn clear_resets_contents() {
        let mut wv = WordVec::of(&[1, 2, 3, 4]);
        wv.clear();
        assert!(wv.is_empty());
        assert_eq!(wv.words(), 1, "empty payload still costs one word");
        let mut inline = WordVec::one(5);
        inline.clear();
        assert!(inline.is_empty());
    }
}

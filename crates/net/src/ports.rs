//! Anonymous ports for the KT0 variant.
//!
//! In KT0 (Section 1.2) a node can send and receive along its `n − 1`
//! links "without being aware of the identity of nodes at the other end".
//! The simulator realizes this with a hidden, seeded permutation per node:
//! node `u`'s port `p ∈ 0..n−1` connects to [`PortMap::neighbor_at`]`(u, p)`.
//! KT0 algorithms address by port; the Section 3 lower-bound argument is
//! precisely about what this hides (a node cannot distinguish which vertex
//! sits behind an untouched port).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The hidden port → neighbor assignment of a KT0 clique.
#[derive(Clone, Debug)]
pub struct PortMap {
    /// `neighbor[u][p]` = node behind port `p` of node `u`.
    neighbor: Vec<Vec<u32>>,
    /// `port[u][v]` = port of `u` leading to `v` (self entry unused).
    port: Vec<Vec<u32>>,
}

impl PortMap {
    /// Draws the port permutations from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "a clique needs at least 2 machines");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
        let mut neighbor = Vec::with_capacity(n);
        let mut port = vec![vec![u32::MAX; n]; n];
        for (u, row) in port.iter_mut().enumerate() {
            let mut others: Vec<u32> = (0..n as u32).filter(|&v| v as usize != u).collect();
            others.shuffle(&mut rng);
            for (p, &v) in others.iter().enumerate() {
                row[v as usize] = p as u32;
            }
            neighbor.push(others);
        }
        PortMap { neighbor, port }
    }

    /// Clique size.
    pub fn n(&self) -> usize {
        self.neighbor.len()
    }

    /// Node behind port `p` of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ n − 1` or `u ≥ n`.
    pub fn neighbor_at(&self, u: usize, p: usize) -> usize {
        self.neighbor[u][p] as usize
    }

    /// Port of `u` that leads to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either is out of range.
    pub fn port_of(&self, u: usize, v: usize) -> usize {
        assert_ne!(u, v, "no self-port");
        self.port[u][v] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_are_permutations() {
        let pm = PortMap::new(9, 4);
        for u in 0..9 {
            let mut seen: Vec<usize> = (0..8).map(|p| pm.neighbor_at(u, p)).collect();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..9).filter(|&v| v != u).collect();
            assert_eq!(seen, expect);
        }
    }

    #[test]
    fn port_of_inverts_neighbor_at() {
        let pm = PortMap::new(12, 5);
        for u in 0..12 {
            for p in 0..11 {
                let v = pm.neighbor_at(u, p);
                assert_eq!(pm.port_of(u, v), p);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PortMap::new(7, 1);
        let b = PortMap::new(7, 1);
        for u in 0..7 {
            for p in 0..6 {
                assert_eq!(a.neighbor_at(u, p), b.neighbor_at(u, p));
            }
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = PortMap::new(16, 1);
        let b = PortMap::new(16, 2);
        let same = (0..16).all(|u| (0..15).all(|p| a.neighbor_at(u, p) == b.neighbor_at(u, p)));
        assert!(!same);
    }

    #[test]
    #[should_panic(expected = "no self-port")]
    fn self_port_rejected() {
        PortMap::new(4, 0).port_of(2, 2);
    }
}

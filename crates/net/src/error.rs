//! Simulator errors.
//!
//! The simulator is strict: a message that would exceed the per-link budget
//! or target an invalid destination is an error that aborts the round, so
//! algorithms cannot silently exceed the model's constraints.

use std::error::Error;
use std::fmt;

/// An error raised by the network simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// A single message is larger than one round's per-link budget; the
    /// sender must fragment it across rounds or receivers (e.g. via
    /// routing) instead.
    MessageTooLarge {
        /// The 0-based round of the offending send.
        round: u64,
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Message size in words.
        words: u64,
        /// Per-link budget in words.
        budget: u64,
    },
    /// The per-link budget for this round is already exhausted.
    LinkBusy {
        /// The 0-based round of the offending send.
        round: u64,
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Words already committed on the link this round.
        used: u64,
        /// Additional words requested.
        requested: u64,
        /// Per-link budget in words.
        budget: u64,
    },
    /// Destination out of range.
    BadDestination {
        /// Sender.
        src: usize,
        /// Destination.
        dst: usize,
        /// Clique size.
        n: usize,
    },
    /// A node tried to message itself (there is no self-link in the model).
    SelfMessage {
        /// The offending node.
        node: usize,
    },
    /// `fast_forward` was called while messages were still in flight.
    PendingMessages {
        /// Number of undelivered messages.
        pending: usize,
    },
    /// The configured round watchdog fired (see `NetConfig::round_cap`).
    RoundCapExceeded {
        /// The configured cap.
        cap: u64,
    },
    /// A point-to-point send was attempted in the broadcast-only variant
    /// of the model. Carries the round and link like the budget
    /// violations, so a grid run can name exactly where an algorithm
    /// first stepped outside the model.
    UnicastInBroadcastModel {
        /// The 0-based round of the offending send.
        round: u64,
        /// The offending node.
        src: usize,
        /// The addressed destination.
        dst: usize,
    },
}

impl NetError {
    /// A stable machine-readable kind tag (used by grid artifacts to
    /// classify *where* an algorithm breaks as the model tightens).
    pub fn kind(&self) -> &'static str {
        match self {
            NetError::MessageTooLarge { .. } => "message-too-large",
            NetError::LinkBusy { .. } => "link-busy",
            NetError::BadDestination { .. } => "bad-destination",
            NetError::SelfMessage { .. } => "self-message",
            NetError::PendingMessages { .. } => "pending-messages",
            NetError::RoundCapExceeded { .. } => "round-cap",
            NetError::UnicastInBroadcastModel { .. } => "unicast-in-broadcast",
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::MessageTooLarge {
                round,
                src,
                dst,
                words,
                budget,
            } => write!(
                f,
                "round {round}: message of {words} words on link {src}->{dst} exceeds the {budget}-word link budget"
            ),
            NetError::LinkBusy {
                round,
                src,
                dst,
                used,
                requested,
                budget,
            } => write!(
                f,
                "round {round}: link {src}->{dst} budget exhausted: {used} used + {requested} requested > {budget}"
            ),
            NetError::BadDestination { src, dst, n } => {
                write!(f, "node {src} addressed {dst} outside the {n}-clique")
            }
            NetError::SelfMessage { node } => {
                write!(f, "node {node} tried to send a message to itself")
            }
            NetError::PendingMessages { pending } => {
                write!(f, "cannot fast-forward with {pending} undelivered messages")
            }
            NetError::RoundCapExceeded { cap } => {
                write!(f, "round watchdog fired: more than {cap} rounds executed")
            }
            NetError::UnicastInBroadcastModel { round, src, dst } => {
                write!(
                    f,
                    "round {round}: node {src} attempted a point-to-point send to {dst} in the broadcast-only model"
                )
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<NetError> = vec![
            NetError::MessageTooLarge {
                round: 4,
                src: 1,
                dst: 2,
                words: 9,
                budget: 8,
            },
            NetError::LinkBusy {
                round: 4,
                src: 1,
                dst: 2,
                used: 8,
                requested: 1,
                budget: 8,
            },
            NetError::BadDestination {
                src: 0,
                dst: 99,
                n: 8,
            },
            NetError::SelfMessage { node: 3 },
            NetError::PendingMessages { pending: 4 },
            NetError::RoundCapExceeded { cap: 100 },
            NetError::UnicastInBroadcastModel {
                round: 4,
                src: 2,
                dst: 3,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn kind_tags_cover_every_variant_and_never_collide() {
        // One witness per variant. A `match` on the last entry (without
        // a wildcard) makes this list compile-time exhaustive: adding a
        // NetError variant breaks the build here until its witness —
        // and therefore its kind tag — is added too.
        let witnesses: Vec<NetError> = vec![
            NetError::MessageTooLarge {
                round: 0,
                src: 0,
                dst: 1,
                words: 9,
                budget: 8,
            },
            NetError::LinkBusy {
                round: 0,
                src: 0,
                dst: 1,
                used: 8,
                requested: 1,
                budget: 8,
            },
            NetError::BadDestination {
                src: 0,
                dst: 9,
                n: 4,
            },
            NetError::SelfMessage { node: 0 },
            NetError::PendingMessages { pending: 1 },
            NetError::RoundCapExceeded { cap: 1 },
            NetError::UnicastInBroadcastModel {
                round: 0,
                src: 0,
                dst: 1,
            },
        ];
        for e in &witnesses {
            match e {
                NetError::MessageTooLarge { .. }
                | NetError::LinkBusy { .. }
                | NetError::BadDestination { .. }
                | NetError::SelfMessage { .. }
                | NetError::PendingMessages { .. }
                | NetError::RoundCapExceeded { .. }
                | NetError::UnicastInBroadcastModel { .. } => {}
            }
        }
        // Tags are stable artifact vocabulary: lowercase-kebab, unique.
        let tags: Vec<&str> = witnesses.iter().map(NetError::kind).collect();
        for t in &tags {
            assert!(
                !t.is_empty()
                    && t.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "tag {t:?} is not lowercase-kebab"
            );
        }
        let unique: std::collections::BTreeSet<&str> = tags.iter().copied().collect();
        assert_eq!(
            unique.len(),
            witnesses.len(),
            "kind tags must be unique: {tags:?}"
        );
        assert_eq!(
            unique.into_iter().collect::<Vec<_>>(),
            vec![
                "bad-destination",
                "link-busy",
                "message-too-large",
                "pending-messages",
                "round-cap",
                "self-message",
                "unicast-in-broadcast",
            ]
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(NetError::SelfMessage { node: 0 });
    }
}

//! Reusable send-time budget enforcement.
//!
//! The model's rules — destination validity, the broadcast-only
//! restriction, and the per-link per-round word budget — were originally
//! private to [`CliqueNet::step`](crate::CliqueNet::step). They live here
//! as standalone pieces so alternative drivers (notably the parallel
//! execution engine in `cc-runtime`) enforce *exactly* the same contract:
//! [`SendRules`] binds a [`cc_model::ModelSpec`] to a clique size and a
//! round, and [`LinkUse`] is the per-sender scratch ledger of words
//! already charged toward each destination this round.
//!
//! [`LinkUse`] is deliberately not thread-safe: every sender's budget is
//! independent, so a parallel driver gives each worker its own ledger and
//! resets it between nodes — budget enforcement needs no locks.

use cc_model::{LinkMode, ModelSpec};

use crate::config::NetConfig;
use crate::error::NetError;

/// The immutable per-round send rules of one network: a model spec bound
/// to a clique size and stamped with the round it is enforcing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendRules {
    /// Clique size.
    pub n: usize,
    /// The model spec admission is checked against (bandwidth and link
    /// mode; the mapping rides along untouched — it never changes what a
    /// *logical* send is allowed to do).
    pub model: ModelSpec,
    /// The 0-based round these rules are enforcing (attached to budget
    /// errors so a violation names the round it happened in).
    pub round: u64,
}

impl SendRules {
    /// Extracts the rules a config implies (round 0; see [`for_round`]).
    ///
    /// [`for_round`]: SendRules::for_round
    pub fn from_config(cfg: &NetConfig) -> Self {
        SendRules {
            n: cfg.n,
            model: cfg.model(),
            round: 0,
        }
    }

    /// Whether only [`broadcast`](crate::Outbox::broadcast) is permitted
    /// (the paper's footnote-1 model variant).
    pub fn broadcast_only(&self) -> bool {
        self.model.link_mode == LinkMode::BroadcastOnly
    }

    /// Words each ordered link may carry per round.
    pub fn link_words(&self) -> u64 {
        self.model.bandwidth_words_per_link
    }

    /// The same rules stamped with the round they are enforcing.
    #[must_use]
    pub fn for_round(mut self, round: u64) -> Self {
        self.round = round;
        self
    }

    /// The same rules with the per-link budget lowered to
    /// `cap.min(self.link_words())` (a fault-injection bandwidth squeeze
    /// can only shrink the budget, never grow it).
    #[must_use]
    pub fn with_link_words_capped(mut self, cap: u64) -> Self {
        self.model.bandwidth_words_per_link = self.model.bandwidth_words_per_link.min(cap.max(1));
        self
    }

    /// Validates one point-to-point send of `words` words from `src` to
    /// `dst` given `used` words already charged toward `dst` this round.
    ///
    /// Returns the number of words to charge (`words.max(1)`: even an
    /// empty signal occupies a message slot).
    ///
    /// # Errors
    ///
    /// The same violations [`Outbox::send`](crate::Outbox::send)
    /// documents: [`NetError::UnicastInBroadcastModel`],
    /// [`NetError::BadDestination`], [`NetError::SelfMessage`],
    /// [`NetError::MessageTooLarge`], [`NetError::LinkBusy`].
    pub fn validate(&self, src: usize, dst: usize, words: u64, used: u64) -> Result<u64, NetError> {
        if self.broadcast_only() {
            return Err(NetError::UnicastInBroadcastModel {
                round: self.round,
                src,
                dst,
            });
        }
        if dst >= self.n {
            return Err(NetError::BadDestination {
                src,
                dst,
                n: self.n,
            });
        }
        if dst == src {
            return Err(NetError::SelfMessage { node: src });
        }
        let words = words.max(1);
        let budget = self.link_words();
        if words > budget {
            return Err(NetError::MessageTooLarge {
                round: self.round,
                src,
                dst,
                words,
                budget,
            });
        }
        if used + words > budget {
            return Err(NetError::LinkBusy {
                round: self.round,
                src,
                dst,
                used,
                requested: words,
                budget,
            });
        }
        Ok(words)
    }
}

/// One sender's per-destination word ledger for the current round.
///
/// Reset between nodes in `O(destinations touched)`, not `O(n)`, so a
/// driver can reuse one ledger across all nodes of a round (or one per
/// worker thread) without quadratic clearing cost.
#[derive(Clone, Debug)]
pub struct LinkUse {
    used: Vec<u64>,
    touched: Vec<usize>,
}

impl LinkUse {
    /// A fresh ledger for an `n`-node clique.
    pub fn new(n: usize) -> Self {
        LinkUse {
            used: vec![0; n],
            touched: Vec::new(),
        }
    }

    /// Words already charged toward `dst`.
    pub fn used(&self, dst: usize) -> u64 {
        self.used[dst]
    }

    /// Charges `words` toward `dst`.
    pub fn charge(&mut self, dst: usize, words: u64) {
        if self.used[dst] == 0 {
            self.touched.push(dst);
        }
        self.used[dst] += words;
    }

    /// Clears the ledger for the next sender.
    pub fn reset(&mut self) {
        for dst in self.touched.drain(..) {
            self.used[dst] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(n: usize, link_words: u64) -> SendRules {
        SendRules {
            n,
            model: ModelSpec::clique().with_bandwidth(link_words),
            round: 0,
        }
    }

    #[test]
    fn validates_the_happy_path_and_charges_at_least_one_word() {
        let r = rules(4, 8);
        assert_eq!(r.validate(0, 1, 3, 0), Ok(3));
        assert_eq!(
            r.validate(0, 1, 0, 0),
            Ok(1),
            "empty signal still occupies a slot"
        );
    }

    #[test]
    fn rejects_bad_targets() {
        let r = rules(4, 8);
        assert!(matches!(
            r.validate(0, 4, 1, 0),
            Err(NetError::BadDestination { .. })
        ));
        assert!(matches!(
            r.validate(2, 2, 1, 0),
            Err(NetError::SelfMessage { node: 2 })
        ));
    }

    #[test]
    fn rejects_over_budget() {
        let r = rules(4, 4);
        assert!(matches!(
            r.validate(0, 1, 5, 0),
            Err(NetError::MessageTooLarge { .. })
        ));
        assert!(matches!(
            r.validate(0, 1, 2, 3),
            Err(NetError::LinkBusy { .. })
        ));
        assert_eq!(
            r.validate(0, 1, 2, 2),
            Ok(2),
            "exactly filling the link is fine"
        );
    }

    #[test]
    fn broadcast_only_rejects_unicast_with_the_full_link() {
        let r = SendRules {
            n: 4,
            model: ModelSpec::clique().broadcast_only(),
            round: 9,
        };
        assert_eq!(
            r.validate(1, 2, 1, 0),
            Err(NetError::UnicastInBroadcastModel {
                round: 9,
                src: 1,
                dst: 2
            })
        );
    }

    #[test]
    fn budget_errors_name_the_round_and_link() {
        let r = rules(4, 4).for_round(7);
        match r.validate(0, 1, 5, 0) {
            Err(NetError::MessageTooLarge {
                round, src, dst, ..
            }) => {
                assert_eq!((round, src, dst), (7, 0, 1));
            }
            other => panic!("expected MessageTooLarge, got {other:?}"),
        }
        match r.validate(2, 3, 2, 3) {
            Err(NetError::LinkBusy {
                round, src, dst, ..
            }) => {
                assert_eq!((round, src, dst), (7, 2, 3));
            }
            other => panic!("expected LinkBusy, got {other:?}"),
        }
    }

    #[test]
    fn squeeze_cap_only_shrinks_and_floors_at_one() {
        let r = rules(4, 8);
        assert_eq!(r.with_link_words_capped(3).link_words(), 3);
        assert_eq!(r.with_link_words_capped(99).link_words(), 8);
        assert_eq!(r.with_link_words_capped(0).link_words(), 1);
    }

    #[test]
    fn rules_carry_the_configs_model() {
        let cfg = NetConfig::kt1(8).with_link_words(5);
        let r = SendRules::from_config(&cfg);
        assert_eq!(r.model, cfg.model());
        assert_eq!(r.link_words(), 5);
        assert!(!r.broadcast_only());
        assert!(SendRules::from_config(&NetConfig::kt1(8).broadcast_only()).broadcast_only());
    }

    #[test]
    fn ledger_charges_and_resets_cheaply() {
        let mut l = LinkUse::new(8);
        l.charge(3, 2);
        l.charge(3, 1);
        l.charge(5, 4);
        assert_eq!(l.used(3), 3);
        assert_eq!(l.used(5), 4);
        assert_eq!(l.used(0), 0);
        l.reset();
        assert_eq!(l.used(3), 0);
        assert_eq!(l.used(5), 0);
    }
}

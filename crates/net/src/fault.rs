//! Fault-injection interposition points.
//!
//! The simulator itself stays fault-free by default; a driver may attach
//! a [`FaultInjector`] (see [`CliqueNet::set_fault_injector`]) and every
//! staged message then passes through [`apply_faults`] *after* being
//! metered but *before* delivery. The split matters for the model's
//! accounting: a dropped or corrupted message was still **sent** — it
//! consumed its link budget and counts toward the word/message totals —
//! only its delivery is perturbed. Crashes and bandwidth squeezes are
//! separate hooks consulted at the top of each round.
//!
//! Determinism contract: an injector's answers must be pure functions of
//! `(round, src, dst, index)` (for per-message decisions), `(round,
//! node)` (for crashes), and `round` (for squeezes) — no interior
//! mutability, no iteration-order dependence. Under that contract the
//! same plan replays byte-identically on [`CliqueNet::step`] and on both
//! `cc-runtime` backends, which the cross-engine equivalence tests
//! enforce. The `cc-chaos` crate provides the declarative plan → injector
//! implementation; this module only defines the seam.
//!
//! [`CliqueNet::set_fault_injector`]: crate::CliqueNet::set_fault_injector

use crate::net::Envelope;
use crate::wire::Wire;
use cc_trace::{Event, FaultKind};
use std::collections::BTreeMap;

/// What happens to one staged message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally (the overwhelmingly common answer).
    Deliver,
    /// Silently discard the message (it was still metered).
    Drop,
    /// Deliver two copies back to back.
    Duplicate,
    /// Flip one payload bit (selected by `bit`, reduced modulo the
    /// payload's capacity by [`Wire::corrupt_bit`]). If the payload type
    /// cannot express a flip, the message is dropped instead — the
    /// corruption is recorded either way.
    Corrupt {
        /// Bit selector handed to [`Wire::corrupt_bit`].
        bit: u64,
    },
    /// Deliver `rounds` (≥ 1, clamped) rounds later than normal.
    Defer {
        /// Extra rounds of delay beyond the normal next-round delivery.
        rounds: u64,
    },
}

/// A source of fault decisions, consulted by the execution engines.
///
/// Every method has a benign default, so a no-op injector is
/// `struct NoFaults; impl FaultInjector for NoFaults {}`. Implementations
/// must be deterministic (see the [module docs](self)) and `Send + Sync`
/// so the parallel backend's workers can consult one injector
/// concurrently.
pub trait FaultInjector: Send + Sync {
    /// The fate of the `index`-th message staged by `src` **to `dst`**
    /// this `round` (indices count the sends on one directed link in
    /// order, starting at 0 each round).
    ///
    /// Indices are per-link rather than per-sender on purpose: an
    /// algorithm that iterates its destinations in a container-dependent
    /// order still produces the same per-link send sequences, so fault
    /// decisions — and therefore whole harness runs — replay across
    /// processes, not just across engines.
    fn decision(&self, round: u64, src: usize, dst: usize, index: u32) -> FaultDecision {
        let _ = (round, src, dst, index);
        FaultDecision::Deliver
    }

    /// Whether `node` is fail-stop crashed in `round`. Must be monotone:
    /// once `true` for some round, `true` for every later round.
    fn crashed(&self, round: u64, node: usize) -> bool {
        let _ = (round, node);
        false
    }

    /// A per-link word budget override for `round` (a bandwidth
    /// squeeze). Only caps below the configured budget take effect —
    /// faults can shrink the model's bandwidth, never grow it.
    fn link_words(&self, round: u64) -> Option<u64> {
        let _ = round;
        None
    }
}

/// The injector that never injects (useful as an explicit default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// One injected fault, recorded for the trace stream.
///
/// Converted to [`Event::Fault`] by [`FaultRecord::to_event`]; engines
/// emit the round's records after its `MessageBatch` events, ordered by
/// `(src, index)` — the order [`apply_faults`] produces when invoked per
/// node in ID order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Round the faulted message was sent in.
    pub round: u64,
    /// What was injected.
    pub kind: FaultKind,
    /// Sender of the affected message.
    pub src: u32,
    /// Addressee of the affected message.
    pub dst: u32,
    /// The link's per-round send index of the affected message (the
    /// position among `src → dst` sends this round).
    pub index: u32,
    /// Kind-specific detail: defer delay in rounds, corrupt bit
    /// selector, or squeezed budget; 0 otherwise.
    pub info: u64,
}

impl FaultRecord {
    /// The trace event this record corresponds to.
    pub fn to_event(&self) -> Event {
        Event::Fault {
            round: self.round,
            kind: self.kind,
            src: self.src,
            dst: self.dst,
            index: self.index,
            info: self.info,
        }
    }
}

/// The result of passing staged messages through an injector.
#[derive(Clone, Debug)]
pub struct FaultOutcome<M> {
    /// Envelopes to deliver next round (post-drop/duplicate/corrupt).
    pub deliver: Vec<Envelope<M>>,
    /// Envelopes to deliver in a later round: `(delivery_round, env)`.
    pub deferred: Vec<(u64, Envelope<M>)>,
    /// What was injected, in `(src, index)` order.
    pub records: Vec<FaultRecord>,
}

/// Applies `injector`'s per-message decisions to messages staged in
/// `round` (normal delivery would be in `round + 1`).
///
/// `staged` is typically one sender's sends, in send order; per-link
/// indices are tracked internally so callers may also pass several
/// senders' sends concatenated in (node, send) order. Metering is the
/// caller's job and must happen *before* this call (see the
/// [module docs](self)).
pub fn apply_faults<M: Wire + Clone>(
    injector: &dyn FaultInjector,
    round: u64,
    staged: Vec<Envelope<M>>,
) -> FaultOutcome<M> {
    let mut out = FaultOutcome {
        deliver: Vec::with_capacity(staged.len()),
        deferred: Vec::new(),
        records: Vec::new(),
    };
    let mut next_index: BTreeMap<(usize, usize), u32> = BTreeMap::new();
    for mut env in staged {
        let slot = next_index.entry((env.src, env.dst)).or_insert(0);
        let index = *slot;
        *slot += 1;
        let record = |kind: FaultKind, info: u64| FaultRecord {
            round,
            kind,
            src: env.src as u32,
            dst: env.dst as u32,
            index,
            info,
        };
        match injector.decision(round, env.src, env.dst, index) {
            FaultDecision::Deliver => out.deliver.push(env),
            FaultDecision::Drop => out.records.push(record(FaultKind::Drop, 0)),
            FaultDecision::Duplicate => {
                out.records.push(record(FaultKind::Duplicate, 0));
                out.deliver.push(env.clone());
                out.deliver.push(env);
            }
            FaultDecision::Corrupt { bit } => {
                out.records.push(record(FaultKind::Corrupt, bit));
                if env.msg.corrupt_bit(bit) {
                    out.deliver.push(env);
                }
                // else: the payload has no flippable bits — degrade to a
                // drop (already recorded as a corruption).
            }
            FaultDecision::Defer { rounds } => {
                let delay = rounds.max(1);
                out.records.push(record(FaultKind::Defer, delay));
                out.deferred.push((round + 1 + delay, env));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, dst: usize, msg: u64) -> Envelope<u64> {
        Envelope { src, dst, msg }
    }

    /// Scripted injector: decisions keyed by (src, dst, index).
    struct Script(BTreeMap<(usize, usize, u32), FaultDecision>);

    impl FaultInjector for Script {
        fn decision(&self, _round: u64, src: usize, dst: usize, index: u32) -> FaultDecision {
            self.0
                .get(&(src, dst, index))
                .copied()
                .unwrap_or(FaultDecision::Deliver)
        }
    }

    #[test]
    fn no_faults_delivers_everything_unchanged() {
        let staged = vec![env(0, 1, 7), env(0, 2, 8)];
        let out = apply_faults(&NoFaults, 3, staged.clone());
        assert_eq!(out.deliver, staged);
        assert!(out.deferred.is_empty() && out.records.is_empty());
    }

    #[test]
    fn drop_duplicate_defer_and_corrupt_each_do_their_thing() {
        let script = Script(BTreeMap::from([
            ((0, 1, 0), FaultDecision::Drop),
            ((0, 2, 0), FaultDecision::Duplicate),
            ((0, 3, 0), FaultDecision::Corrupt { bit: 5 }),
            ((0, 4, 0), FaultDecision::Defer { rounds: 2 }),
        ]));
        let staged = vec![env(0, 1, 10), env(0, 2, 20), env(0, 3, 30), env(0, 4, 40)];
        let out = apply_faults(&script, 7, staged);
        assert_eq!(
            out.deliver,
            vec![env(0, 2, 20), env(0, 2, 20), env(0, 3, 30 ^ (1 << 5))]
        );
        assert_eq!(out.deferred, vec![(10, env(0, 4, 40))]);
        let kinds: Vec<FaultKind> = out.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Drop,
                FaultKind::Duplicate,
                FaultKind::Corrupt,
                FaultKind::Defer
            ]
        );
        assert_eq!(out.records[3].info, 2, "defer info is the delay");
        assert!(out.records.iter().all(|r| r.round == 7));
    }

    #[test]
    fn indices_count_per_link_sends_in_order() {
        let script = Script(BTreeMap::from([((2, 0, 1), FaultDecision::Drop)]));
        // Neither sender 1's send nor sender 2's send on a *different*
        // link advances the (2, 0) link index.
        let staged = vec![env(2, 0, 1), env(1, 0, 2), env(2, 3, 9), env(2, 0, 3)];
        let out = apply_faults(&script, 0, staged);
        assert_eq!(out.deliver, vec![env(2, 0, 1), env(1, 0, 2), env(2, 3, 9)]);
        assert_eq!(out.records.len(), 1);
        assert_eq!((out.records[0].src, out.records[0].index), (2, 1));
    }

    #[test]
    fn corrupting_an_unflippable_payload_degrades_to_a_recorded_drop() {
        struct CorruptAll;
        impl FaultInjector for CorruptAll {
            fn decision(&self, _r: u64, _s: usize, _d: usize, _i: u32) -> FaultDecision {
                FaultDecision::Corrupt { bit: 9 }
            }
        }
        let staged = vec![Envelope {
            src: 0,
            dst: 1,
            msg: (),
        }];
        let out = apply_faults(&CorruptAll, 0, staged);
        assert!(out.deliver.is_empty(), "unflippable payload dropped");
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].kind, FaultKind::Corrupt);
    }

    #[test]
    fn defer_of_zero_rounds_still_delays_by_one() {
        struct DeferZero;
        impl FaultInjector for DeferZero {
            fn decision(&self, _r: u64, _s: usize, _d: usize, _i: u32) -> FaultDecision {
                FaultDecision::Defer { rounds: 0 }
            }
        }
        let out = apply_faults(&DeferZero, 4, vec![env(0, 1, 1)]);
        assert_eq!(out.deferred[0].0, 6, "round 4 send lands in round 6");
        assert_eq!(out.records[0].info, 1);
    }

    #[test]
    fn records_convert_to_model_events() {
        let rec = FaultRecord {
            round: 2,
            kind: FaultKind::Defer,
            src: 1,
            dst: 3,
            index: 0,
            info: 4,
        };
        let ev = rec.to_event();
        assert!(ev.is_model());
        assert_eq!(ev.kind(), "fault");
    }
}

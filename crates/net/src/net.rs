//! The synchronous Congested Clique simulator.
//!
//! A [`CliqueNet`] advances in synchronous rounds. In each round every node,
//! in ID order, receives the messages addressed to it in the previous round
//! and may send one bounded message along each of its `n − 1` links. The
//! per-link budget ([`NetConfig::link_words`]) is enforced at send time, so
//! an algorithm that needs to move something larger must fragment it across
//! rounds or spread it across receivers (that is what the routing
//! collectives in `cc-route` are for).
//!
//! Node programs are written as closures over per-node state:
//!
//! ```
//! use cc_net::{CliqueNet, NetConfig};
//!
//! let mut net: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(4));
//! let mut state = vec![0u64; 4];
//! // Round 1: everyone sends its ID to node 0.
//! net.step(|node, _inbox, out| {
//!     if node != 0 {
//!         out.send(0, node as u64).unwrap();
//!     }
//! }).unwrap();
//! // Round 2: node 0 sums what it received.
//! net.step(|node, inbox, _out| {
//!     if node == 0 {
//!         state[0] = inbox.iter().map(|e| e.msg).sum();
//!     }
//! }).unwrap();
//! assert_eq!(state[0], 1 + 2 + 3);
//! assert_eq!(net.cost().rounds, 2);
//! assert_eq!(net.cost().messages, 3);
//! ```
//!
//! The closure receives only the node's ID and inbox; per-node state lives
//! in vectors owned by the algorithm and indexed by the node ID. The API
//! shape makes non-local reads glaring in review, which is the discipline
//! this simulator relies on (it does not memory-protect states).

use crate::batch::RoundBatches;
use crate::budget::{LinkUse, SendRules};
use crate::config::{Knowledge, NetConfig};
use crate::counters::{Cost, Counters};
use crate::error::NetError;
use crate::fault::{apply_faults, FaultInjector, FaultRecord};
use crate::ports::PortMap;
use crate::wire::Wire;
use cc_model::LinkMode;
use cc_trace::{Event, FaultKind, NullTracer, Tracer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::time::Instant;

/// A delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub src: usize,
    /// Receiver.
    pub dst: usize,
    /// Payload.
    pub msg: M,
}

/// Per-node send handle for one round.
///
/// Obtained inside [`CliqueNet::step`]; enforces destination validity and
/// the per-link word budget.
pub struct Outbox<'a, M> {
    node: usize,
    rules: SendRules,
    links: &'a mut LinkUse,
    staged: Vec<Envelope<M>>,
    error: Option<NetError>,
}

impl<'a, M: Wire> Outbox<'a, M> {
    /// Assembles a standalone outbox for one sender.
    ///
    /// This is how external drivers (the `cc-runtime` execution engine)
    /// obtain the same budget enforcement [`CliqueNet::step`] applies:
    /// build an outbox per node against a reusable [`LinkUse`] ledger,
    /// hand it to the node's program, then recover the staged envelopes
    /// with [`Outbox::finish`] and [`LinkUse::reset`] the ledger for the
    /// next sender.
    pub fn assemble(node: usize, rules: SendRules, links: &'a mut LinkUse) -> Self {
        Self::assemble_in(node, rules, links, Vec::new())
    }

    /// [`assemble`](Outbox::assemble) with a caller-supplied staging
    /// buffer (must be empty). Pooled drivers pass the drained buffer of
    /// the previous node back in, so steady-state staging allocates
    /// nothing; [`Outbox::finish`] returns the same buffer.
    pub fn assemble_in(
        node: usize,
        rules: SendRules,
        links: &'a mut LinkUse,
        staged: Vec<Envelope<M>>,
    ) -> Self {
        debug_assert!(staged.is_empty(), "staging buffer must start empty");
        Outbox {
            node,
            rules,
            links,
            staged,
            error: None,
        }
    }

    /// Tears the outbox down into its staged envelopes and the first
    /// latched violation, if any.
    pub fn finish(self) -> (Vec<Envelope<M>>, Option<NetError>) {
        (self.staged, self.error)
    }
}

impl<M: Wire> Outbox<'_, M> {
    /// Sends `msg` to `dst` this round.
    ///
    /// # Errors
    ///
    /// * [`NetError::BadDestination`] / [`NetError::SelfMessage`] for
    ///   invalid targets.
    /// * [`NetError::MessageTooLarge`] if the message alone exceeds the
    ///   link budget.
    /// * [`NetError::LinkBusy`] if this round's budget toward `dst` is
    ///   exhausted.
    ///
    /// Any error is also latched and re-raised by the enclosing
    /// [`CliqueNet::step`], so callers may ignore the returned `Result`
    /// without masking violations.
    pub fn send(&mut self, dst: usize, msg: M) -> Result<(), NetError> {
        let r = self.try_send(dst, msg);
        if let Err(ref e) = r {
            if self.error.is_none() {
                self.error = Some(e.clone());
            }
        }
        r
    }

    fn try_send(&mut self, dst: usize, msg: M) -> Result<(), NetError> {
        let used = if dst < self.rules.n {
            self.links.used(dst)
        } else {
            0
        };
        let words = self.rules.validate(self.node, dst, msg.words(), used)?;
        self.links.charge(dst, words);
        self.staged.push(Envelope {
            src: self.node,
            dst,
            msg,
        });
        Ok(())
    }

    /// Remaining word budget toward `dst` this round.
    pub fn budget_left(&self, dst: usize) -> u64 {
        self.rules.link_words().saturating_sub(self.links.used(dst))
    }
}

impl<M: Wire + Clone> Outbox<'_, M> {
    /// Sends the same message along every link — the only send the
    /// broadcast variant of the model permits (footnote 1 of the paper);
    /// also valid (and counted as `n − 1` messages) in the unicast model.
    ///
    /// The payload itself is moved, not cloned, onto the final link, so a
    /// broadcast costs `n − 2` clones; wrap large payloads in
    /// [`std::sync::Arc`] (which implements [`Wire`] with copy-on-write
    /// corruption) to make every clone a reference-count bump.
    ///
    /// # Errors
    ///
    /// [`NetError::MessageTooLarge`] / [`NetError::LinkBusy`] as for
    /// point-to-point sends. First-error semantics: destinations are
    /// attempted in ascending ID order and the sweep stops at the first
    /// violation, so the reported link is always the lowest-ID failing
    /// destination. Messages already staged toward earlier destinations
    /// stay staged and charged, but the error is latched like any other
    /// send violation — the enclosing round aborts, so a partial
    /// broadcast is never delivered.
    pub fn broadcast(&mut self, msg: M) -> Result<(), NetError> {
        let was_link_mode = self.rules.model.link_mode;
        self.rules.model.link_mode = LinkMode::Unicast;
        let mut result = Ok(());
        let last = (0..self.rules.n).rev().find(|&d| d != self.node);
        let mut payload = Some(msg);
        for dst in 0..self.rules.n {
            if dst == self.node {
                continue;
            }
            let m = if Some(dst) == last {
                payload
                    .take()
                    .expect("the last destination is visited once")
            } else {
                payload
                    .as_ref()
                    .expect("payload lives until the last destination")
                    .clone()
            };
            if let Err(e) = self.send(dst, m) {
                result = Err(e);
                break;
            }
        }
        self.rules.model.link_mode = was_link_mode;
        result
    }
}

/// The simulator. See the [module docs](self) for the execution model.
pub struct CliqueNet<M> {
    cfg: NetConfig,
    word_bits: u64,
    counters: Counters,
    inboxes: Vec<Vec<Envelope<M>>>,
    rngs: Vec<ChaCha8Rng>,
    ports: Option<PortMap>,
    transcript: Vec<(u64, u32, u32)>,
    tracer: Box<dyn Tracer>,
    /// `tracer.enabled()`, cached at attach time so the disabled path is
    /// one predictable branch per emission site (no virtual call).
    tracing: bool,
    /// `tracer.wants_timing()`, cached likewise; gates the clock reads.
    timing: bool,
    /// Attached fault injector, if any (see `set_fault_injector`).
    fault: Option<Box<dyn FaultInjector>>,
    /// `fault.is_some()`, cached so the fault-free path costs one
    /// predictable branch per round (the zero-overhead contract).
    faulty: bool,
    /// Messages deferred by a fault: delivery round → envelopes.
    deferred: BTreeMap<u64, Vec<Envelope<M>>>,
    /// Which nodes have been observed crashed (set when their crash
    /// round executes; also gates the one-time `NodeCrash` event).
    crashed_seen: Vec<bool>,
    /// Recycled inbox buffers: last round's delivered inboxes, emptied
    /// (capacity retained) at the end of each step. Steady-state rounds
    /// therefore build the next inboxes without allocating.
    pool: Vec<Vec<Envelope<M>>>,
    /// Recycled per-node staging buffer (the fault-free path drains it
    /// into the inboxes and hands it to the next node's outbox).
    staged_pool: Vec<Envelope<M>>,
    /// Pooled flat per-link batch accumulator (tracing only).
    batches: RoundBatches,
}

impl<M: Wire> CliqueNet<M> {
    /// A fresh network.
    pub fn new(cfg: NetConfig) -> Self {
        let n = cfg.n;
        let word_bits = cfg.word_bits();
        let rngs = (0..n)
            .map(|u| {
                ChaCha8Rng::seed_from_u64(
                    cfg.seed
                        .wrapping_mul(0x2545F4914F6CDD1D)
                        .wrapping_add(u as u64),
                )
            })
            .collect();
        let ports = match cfg.knowledge {
            Knowledge::Kt0 => Some(PortMap::new(n, cfg.seed)),
            Knowledge::Kt1 => None,
        };
        CliqueNet {
            cfg,
            word_bits,
            counters: Counters::new(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            rngs,
            ports,
            transcript: Vec::new(),
            tracer: Box::new(NullTracer),
            tracing: false,
            timing: false,
            fault: None,
            faulty: false,
            deferred: BTreeMap::new(),
            crashed_seen: vec![false; n],
            pool: (0..n).map(|_| Vec::new()).collect(),
            staged_pool: Vec::new(),
            batches: RoundBatches::new(),
        }
    }

    /// Attaches a [`FaultInjector`]; subsequent rounds pass every staged
    /// message through it (after metering, before delivery) and consult
    /// its crash and bandwidth-squeeze hooks. Resets the crash bookkeeping
    /// so a fresh injector starts from an all-alive view.
    pub fn set_fault_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.fault = Some(injector);
        self.faulty = true;
        self.crashed_seen = vec![false; self.cfg.n];
    }

    /// Detaches and returns the current injector, restoring fault-free
    /// execution. Already-deferred messages stay scheduled.
    pub fn take_fault_injector(&mut self) -> Option<Box<dyn FaultInjector>> {
        self.faulty = false;
        self.fault.take()
    }

    /// Whether `node` has fail-stop crashed in a round that has already
    /// executed. Drivers ([`run_program`](crate::run_program)) treat
    /// crashed nodes as trivially done so protocols can still terminate.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.crashed_seen.get(node).copied().unwrap_or(false)
    }

    /// Attaches a [`Tracer`] sink; subsequent rounds, scopes, sends, and
    /// fast-forwards emit structured [`Event`]s into it. The sink's
    /// `enabled()` / `wants_timing()` answers are cached here — the
    /// default [`NullTracer`] therefore costs one branch per site.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracing = tracer.enabled();
        self.timing = tracer.wants_timing();
        self.tracer = tracer;
    }

    /// Detaches and returns the current tracer (flushed), restoring the
    /// disabled default.
    pub fn take_tracer(&mut self) -> Box<dyn Tracer> {
        let mut t = std::mem::replace(&mut self.tracer, Box::new(NullTracer));
        t.flush();
        self.tracing = false;
        self.timing = false;
        t
    }

    /// The recorded `(round, src, dst)` transcript (empty unless
    /// [`NetConfig::record_transcript`] is set).
    pub fn transcript(&self) -> &[(u64, u32, u32)] {
        &self.transcript
    }

    /// Clique size.
    pub fn n(&self) -> usize {
        self.cfg.n
    }

    /// The configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Accumulated cost so far.
    pub fn cost(&self) -> Cost {
        self.counters.total()
    }

    /// The cost counters (for scope queries).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Opens a named cost scope (see [`Counters::begin_scope`]).
    pub fn begin_scope(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.tracing {
            self.tracer.record(Event::ScopeEnter {
                name: name.clone(),
                round: self.counters.total().rounds,
            });
        }
        self.counters.begin_scope(name);
    }

    /// Closes the innermost cost scope and returns its delta.
    pub fn end_scope(&mut self) -> Cost {
        let delta = self.counters.end_scope();
        if self.tracing {
            let name = self
                .counters
                .scopes()
                .last()
                .map(|(n, _)| n.clone())
                .unwrap_or_default();
            self.tracer.record(Event::ScopeExit {
                name,
                delta: delta.snapshot(),
            });
        }
        delta
    }

    /// Per-node private randomness stream (deterministic per config seed).
    pub fn node_rng(&mut self, node: usize) -> &mut ChaCha8Rng {
        &mut self.rngs[node]
    }

    /// Hidden port map (present only under KT0).
    pub fn ports(&self) -> Option<&PortMap> {
        self.ports.as_ref()
    }

    /// Whether messages are in flight (sent last round, not yet
    /// delivered), including fault-deferred messages scheduled for
    /// later rounds.
    pub fn has_pending(&self) -> bool {
        self.inboxes.iter().any(|q| !q.is_empty()) || self.deferred.values().any(|q| !q.is_empty())
    }

    /// Number of messages in flight (including fault-deferred ones).
    pub fn pending_count(&self) -> usize {
        self.inboxes.iter().map(Vec::len).sum::<usize>()
            + self.deferred.values().map(Vec::len).sum::<usize>()
    }

    /// Advances the round counter by `rounds` without executing anything —
    /// legitimate only for provably silent stretches (used by the KT1
    /// time-encoding protocol of Section 4, whose round count is
    /// super-polynomial but whose silent rounds carry no information
    /// beyond the count itself).
    ///
    /// # Errors
    ///
    /// [`NetError::PendingMessages`] if messages are in flight.
    pub fn fast_forward(&mut self, rounds: u64) -> Result<(), NetError> {
        if self.has_pending() {
            return Err(NetError::PendingMessages {
                pending: self.pending_count(),
            });
        }
        if self.tracing {
            self.tracer.record(Event::FastForward {
                from_round: self.counters.total().rounds,
                rounds,
            });
        }
        self.counters.add_rounds(rounds);
        Ok(())
    }
}

impl<M: Wire + Clone> CliqueNet<M> {
    /// Executes one synchronous round: delivers last round's messages and
    /// collects this round's sends.
    ///
    /// The closure is invoked once per node in ID order with the node's
    /// inbox (sorted by sender for determinism) and an [`Outbox`]. With a
    /// [`FaultInjector`] attached, crashed nodes are skipped (their inbox
    /// is discarded and their closure never runs) and every staged
    /// message passes through the injector after metering — see
    /// [`crate::fault`] for the exact ordering contract.
    ///
    /// # Errors
    ///
    /// Propagates the first send violation ([`NetError`]) of any node; the
    /// round is then aborted (counters keep the rounds/messages recorded up
    /// to the failure, which only matters for diagnostics).
    pub fn step<F>(&mut self, mut f: F) -> Result<(), NetError>
    where
        F: FnMut(usize, &[Envelope<M>], &mut Outbox<'_, M>),
    {
        if let Some(cap) = self.cfg.round_cap {
            if self.counters.total().rounds >= cap {
                return Err(NetError::RoundCapExceeded { cap });
            }
        }
        let n = self.cfg.n;
        let round = self.counters.total().rounds;
        let before = self.counters.total();
        // Whole-round wall clock: the gap between this and the per-node
        // compute spans is simulator overhead (routing, metering, fault
        // injection) — see `cc_trace::Event::RoundWall`.
        let round_t0 = if self.timing {
            Some(Instant::now())
        } else {
            None
        };
        if self.tracing {
            self.tracer.record(Event::RoundStart { round });
        }
        // Fault pre-pass: effective rules (squeeze), newly crashed nodes.
        let mut rules = SendRules::from_config(&self.cfg).for_round(round);
        let mut crashed_now: Vec<bool> = Vec::new();
        if self.faulty {
            let inj = self.fault.as_deref().expect("faulty implies injector");
            if let Some(cap) = inj.link_words(round) {
                if cap < self.cfg.link_words {
                    rules = rules.with_link_words_capped(cap);
                    if self.tracing {
                        self.tracer.record(Event::Fault {
                            round,
                            kind: FaultKind::Squeeze,
                            src: 0,
                            dst: 0,
                            index: 0,
                            info: rules.link_words(),
                        });
                    }
                }
            }
            crashed_now = (0..n).map(|v| inj.crashed(round, v)).collect();
            for (v, seen) in self.crashed_seen.iter_mut().enumerate() {
                if crashed_now[v] && !*seen {
                    *seen = true;
                    if self.tracing {
                        self.tracer.record(Event::NodeCrash {
                            round,
                            node: v as u32,
                        });
                    }
                }
            }
        }
        // Pooled delivery buffers: last round's inboxes become this
        // round's delivered set, and the buffers recycled (emptied,
        // capacity retained) at the end of the previous step become the
        // next inboxes — steady-state rounds allocate nothing here.
        std::mem::swap(&mut self.inboxes, &mut self.pool);
        let mut delivered = std::mem::take(&mut self.pool);
        // Fault-deferred messages due this round join the regular
        // deliveries; re-sorting keeps the per-sender inbox order stable.
        if self.faulty {
            if let Some(late) = self.deferred.remove(&round) {
                for env in late {
                    delivered[env.dst].push(env);
                }
                for q in &mut delivered {
                    q.sort_by_key(|e| e.src);
                }
            }
        }
        let mut links = LinkUse::new(n);
        // Per-link batches are aggregated flat and pre-fault: the stream
        // is a deterministic function of the sends alone (the same
        // normalization the runtime driver applies), and the send
        // happened and was charged whatever a fault does to it later.
        if self.tracing {
            self.batches.begin_round(n);
        }
        let mut fault_records: Vec<FaultRecord> = Vec::new();
        for (node, inbox) in delivered.iter().enumerate() {
            if self.faulty && crashed_now[node] {
                // Fail-stop: the node computes nothing and sends nothing;
                // messages addressed to it die in its discarded inbox.
                continue;
            }
            let buf = std::mem::take(&mut self.staged_pool);
            let mut outbox = Outbox::assemble_in(node, rules, &mut links, buf);
            let t0 = if self.timing {
                Some(Instant::now())
            } else {
                None
            };
            f(node, inbox, &mut outbox);
            if let Some(t0) = t0 {
                self.tracer.record(Event::NodeCompute {
                    round,
                    node: node as u32,
                    nanos: t0.elapsed().as_nanos() as u64,
                });
            }
            let (mut staged, error) = outbox.finish();
            if let Some(e) = error {
                return Err(e);
            }
            links.reset();
            if self.faulty {
                for env in &staged {
                    let words = env.msg.words().max(1);
                    self.counters.add_message(words, self.word_bits);
                    if self.tracing {
                        self.batches.add(env.dst as u32, words);
                    }
                    if self.cfg.record_transcript {
                        self.transcript
                            .push((round, env.src as u32, env.dst as u32));
                    }
                }
                if self.tracing {
                    self.batches.flush_sender(node as u32);
                }
                let inj = self.fault.as_deref().expect("faulty implies injector");
                let outcome = apply_faults(inj, round, staged);
                for env in outcome.deliver {
                    self.inboxes[env.dst].push(env);
                }
                for (due, env) in outcome.deferred {
                    self.deferred.entry(due).or_default().push(env);
                }
                fault_records.extend(outcome.records);
            } else {
                // Senders run in ID order and stage in send order, so
                // these pushes arrive (src, send-index)-sorted by
                // construction — no per-round normalization sort needed.
                // Metering is fused into the delivery drain: this loop
                // runs once per message and dominates dense rounds.
                for env in staged.drain(..) {
                    let words = env.msg.words().max(1);
                    self.counters.add_message(words, self.word_bits);
                    if self.tracing {
                        self.batches.add(env.dst as u32, words);
                    }
                    if self.cfg.record_transcript {
                        self.transcript
                            .push((round, env.src as u32, env.dst as u32));
                    }
                    self.inboxes[env.dst].push(env);
                }
                if self.tracing {
                    self.batches.flush_sender(node as u32);
                }
                self.staged_pool = staged;
            }
        }
        // Recycle the delivered buffers for the round after next.
        for q in &mut delivered {
            q.clear();
        }
        self.pool = delivered;
        self.counters.add_round();
        if self.tracing {
            for &(src, dst, count, words) in self.batches.entries() {
                self.tracer.record(Event::MessageBatch {
                    round,
                    src,
                    dst,
                    count,
                    words,
                });
            }
            for rec in &fault_records {
                self.tracer.record(rec.to_event());
            }
            if let Some(t0) = round_t0 {
                self.tracer.record(Event::RoundWall {
                    round,
                    nanos: t0.elapsed().as_nanos() as u64,
                });
            }
            let after = self.counters.total();
            self.tracer.record(Event::RoundEnd {
                round,
                messages: after.messages - before.messages,
                words: after.words - before.words,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> CliqueNet<u64> {
        CliqueNet::new(NetConfig::kt1(n).with_seed(1))
    }

    #[test]
    fn messages_arrive_next_round_sorted_by_sender() {
        let mut nt = net(4);
        nt.step(|node, _, out| {
            if node != 2 {
                out.send(2, 100 + node as u64).unwrap();
            }
        })
        .unwrap();
        let mut got = Vec::new();
        nt.step(|node, inbox, _| {
            if node == 2 {
                got = inbox.iter().map(|e| (e.src, e.msg)).collect();
            } else {
                assert!(inbox.is_empty());
            }
        })
        .unwrap();
        assert_eq!(got, vec![(0, 100), (1, 101), (3, 103)]);
    }

    #[test]
    fn counts_rounds_messages_words_bits() {
        let mut nt: CliqueNet<(u64, u64)> = CliqueNet::new(NetConfig::kt1(8).with_seed(0));
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, (1, 2)).unwrap();
                out.send(2, (3, 4)).unwrap();
            }
        })
        .unwrap();
        let c = nt.cost();
        assert_eq!(c.rounds, 1);
        assert_eq!(c.messages, 2);
        assert_eq!(c.words, 4);
        assert_eq!(c.bits, 4 * 3, "word is ⌈log2 8⌉ = 3 bits");
    }

    #[test]
    fn budget_is_per_link_per_round() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_link_words(2));
        // Two words to the same destination: fine.
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 7).unwrap();
                out.send(1, 8).unwrap();
            }
        })
        .unwrap();
        // Three words to the same destination: LinkBusy.
        let err = nt
            .step(|node, _, out| {
                if node == 0 {
                    let _ = out.send(1, 1);
                    let _ = out.send(1, 2);
                    let _ = out.send(1, 3);
                }
            })
            .unwrap_err();
        assert!(matches!(err, NetError::LinkBusy { src: 0, dst: 1, .. }));
    }

    #[test]
    fn budget_resets_between_nodes_and_rounds() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_link_words(1));
        // Both 0 and 1 send one word to 2 in the same round: distinct links.
        nt.step(|node, _, out| {
            if node != 2 {
                out.send(2, node as u64).unwrap();
            }
        })
        .unwrap();
        // Next round the budget is fresh.
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(2, 9).unwrap();
            }
        })
        .unwrap();
        assert_eq!(nt.cost().messages, 3);
    }

    #[test]
    fn oversized_message_rejected() {
        let mut nt: CliqueNet<Vec<u64>> = CliqueNet::new(NetConfig::kt1(4).with_link_words(4));
        let err = nt
            .step(|node, _, out| {
                if node == 0 {
                    let _ = out.send(1, vec![0u64; 5]);
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            NetError::MessageTooLarge {
                words: 5,
                budget: 4,
                ..
            }
        ));
    }

    #[test]
    fn self_and_bad_destination_rejected() {
        let mut nt = net(4);
        let err = nt
            .step(|node, _, out| {
                if node == 1 {
                    let _ = out.send(1, 0);
                }
            })
            .unwrap_err();
        assert_eq!(err, NetError::SelfMessage { node: 1 });
        let mut nt = net(4);
        let err = nt
            .step(|node, _, out| {
                if node == 1 {
                    let _ = out.send(7, 0);
                }
            })
            .unwrap_err();
        assert!(matches!(err, NetError::BadDestination { dst: 7, .. }));
    }

    #[test]
    fn budget_left_reports() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_link_words(5));
        nt.step(|node, _, out| {
            if node == 0 {
                assert_eq!(out.budget_left(1), 5);
                out.send(1, 1).unwrap();
                assert_eq!(out.budget_left(1), 4);
                assert_eq!(out.budget_left(2), 5);
            }
        })
        .unwrap();
    }

    #[test]
    fn all_to_all_in_one_round() {
        let n = 16;
        let mut nt = net(n);
        nt.step(|node, _, out| {
            for dst in 0..n {
                if dst != node {
                    out.send(dst, node as u64).unwrap();
                }
            }
        })
        .unwrap();
        let mut received = vec![0usize; n];
        nt.step(|node, inbox, _| {
            received[node] = inbox.len();
        })
        .unwrap();
        assert!(received.iter().all(|&r| r == n - 1));
        assert_eq!(nt.cost().messages, (n * (n - 1)) as u64);
    }

    #[test]
    fn fast_forward_requires_quiet_network() {
        let mut nt = net(3);
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 1).unwrap();
            }
        })
        .unwrap();
        let err = nt.fast_forward(10).unwrap_err();
        assert_eq!(err, NetError::PendingMessages { pending: 1 });
        // Drain, then fast-forward works.
        nt.step(|_, _, _| {}).unwrap();
        nt.fast_forward(1_000_000).unwrap();
        assert_eq!(nt.cost().rounds, 1_000_002);
    }

    #[test]
    fn node_rngs_are_deterministic_and_distinct() {
        use rand::Rng;
        let mut a = net(4);
        let mut b = net(4);
        let x: u64 = a.node_rng(2).gen();
        let y: u64 = b.node_rng(2).gen();
        assert_eq!(x, y, "same seed, same node → same stream");
        let z: u64 = a.node_rng(3).gen();
        assert_ne!(x, z, "different nodes get different streams");
    }

    #[test]
    fn kt0_has_ports_kt1_does_not() {
        let kt0: CliqueNet<u64> = CliqueNet::new(NetConfig::kt0(5));
        assert!(kt0.ports().is_some());
        let kt1: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(5));
        assert!(kt1.ports().is_none());
    }

    #[test]
    fn scopes_attribute_cost() {
        let mut nt = net(4);
        nt.begin_scope("warmup");
        nt.step(|_, _, _| {}).unwrap();
        nt.end_scope();
        nt.begin_scope("work");
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 5).unwrap();
            }
        })
        .unwrap();
        nt.end_scope();
        assert_eq!(nt.counters().scope("warmup").unwrap().messages, 0);
        assert_eq!(nt.counters().scope("work").unwrap().messages, 1);
    }

    #[test]
    fn nested_scopes_attribute_cost_to_inner_and_outer() {
        let mut nt = net(4);
        nt.begin_scope("outer");
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 1).unwrap(); // outer-only message
            }
        })
        .unwrap();
        nt.begin_scope("inner");
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 2).unwrap();
                out.send(2, 3).unwrap(); // two inner messages
            }
        })
        .unwrap();
        let inner = nt.end_scope();
        nt.step(|_, _, _| {}).unwrap(); // outer again, silent
        let outer = nt.end_scope();
        assert_eq!(inner.rounds, 1);
        assert_eq!(inner.messages, 2);
        // The outer scope contains the inner one: 3 rounds, all 3 messages.
        assert_eq!(outer.rounds, 3);
        assert_eq!(outer.messages, 3);
        assert_eq!(nt.counters().scope("inner"), Some(inner));
        assert_eq!(nt.counters().scope("outer"), Some(outer));
    }

    #[test]
    #[should_panic(expected = "no open scope")]
    fn unbalanced_end_scope_panics_on_the_net() {
        let mut nt = net(3);
        nt.begin_scope("only");
        nt.end_scope();
        nt.end_scope(); // one more than was opened
    }

    #[test]
    fn error_is_latched_even_if_result_ignored() {
        let mut nt = net(3);
        let err = nt.step(|node, _, out| {
            if node == 0 {
                let _ = out.send(0, 1); // ignored Result
            }
        });
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use cc_trace::{Event, RecordingTracer};

    fn traced_net(n: usize) -> (CliqueNet<u64>, RecordingTracer) {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(n).with_seed(3));
        let rec = RecordingTracer::new();
        nt.set_tracer(Box::new(rec.clone()));
        (nt, rec)
    }

    /// Drives a little workload: 2 rounds of traffic inside a scope, one
    /// silent round, and a fast-forward.
    fn drive(nt: &mut CliqueNet<u64>) {
        nt.begin_scope("work");
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 7).unwrap();
                out.send(1, 8).unwrap();
                out.send(2, 9).unwrap();
            }
        })
        .unwrap();
        nt.step(|node, _, out| {
            if node == 2 {
                out.send(0, 1).unwrap();
            }
        })
        .unwrap();
        nt.end_scope();
        nt.step(|_, _, _| {}).unwrap();
        nt.fast_forward(5).unwrap();
    }

    #[test]
    fn event_sums_reproduce_counter_totals() {
        let (mut nt, rec) = traced_net(4);
        drive(&mut nt);
        let cost = nt.cost();
        let events = rec.events();

        let mut rounds = 0u64;
        let mut ff_rounds = 0u64;
        let mut batch_msgs = 0u64;
        let mut batch_words = 0u64;
        let mut end_msgs = 0u64;
        for ev in &events {
            match ev {
                Event::RoundStart { .. } => rounds += 1,
                Event::FastForward { rounds: r, .. } => ff_rounds += *r,
                Event::MessageBatch { count, words, .. } => {
                    batch_msgs += *count as u64;
                    batch_words += *words;
                }
                Event::RoundEnd { messages, .. } => end_msgs += *messages,
                _ => {}
            }
        }
        assert_eq!(rounds + ff_rounds, cost.rounds, "round events == counter");
        assert_eq!(batch_msgs, cost.messages, "batch counts == counter");
        assert_eq!(batch_words, cost.words, "batch words == counter");
        assert_eq!(end_msgs, cost.messages, "round-end deltas == counter");
    }

    #[test]
    fn scope_events_carry_the_scope_delta() {
        let (mut nt, rec) = traced_net(4);
        drive(&mut nt);
        let events = rec.events();
        let enter = events
            .iter()
            .find(|e| matches!(e, Event::ScopeEnter { name, .. } if name == "work"));
        assert!(enter.is_some());
        let exit = events.iter().find_map(|e| match e {
            Event::ScopeExit { name, delta } if name == "work" => Some(*delta),
            _ => None,
        });
        let delta = exit.expect("scope exit recorded");
        assert_eq!(delta.rounds, 2);
        assert_eq!(delta.messages, 4);
        assert_eq!(delta, nt.counters().scope("work").unwrap().snapshot());
    }

    #[test]
    fn batches_aggregate_per_link_and_timing_is_emitted() {
        let (mut nt, rec) = traced_net(4);
        drive(&mut nt);
        let events = rec.events();
        // Round 0: node 0 sent two messages to 1 → one batch of count 2.
        let batch01 = events.iter().find_map(|e| match e {
            Event::MessageBatch {
                round: 0,
                src: 0,
                dst: 1,
                count,
                words,
            } => Some((*count, *words)),
            _ => None,
        });
        assert_eq!(batch01, Some((2, 2)));
        // Every (round, node) pair got a compute span: 4 nodes × 3 rounds.
        let spans = events
            .iter()
            .filter(|e| matches!(e, Event::NodeCompute { .. }))
            .count();
        assert_eq!(spans, 12);
        // Model events exclude the spans.
        assert!(rec.model_events().iter().all(Event::is_model));
    }

    #[test]
    fn detached_runs_stop_tracing() {
        let (mut nt, rec) = traced_net(3);
        nt.step(|_, _, _| {}).unwrap();
        let n_before = rec.len();
        let _ = nt.take_tracer();
        nt.step(|_, _, _| {}).unwrap();
        assert_eq!(rec.len(), n_before, "no events after detach");
        assert_eq!(nt.cost().rounds, 2, "counters keep running regardless");
    }

    #[test]
    fn identical_runs_emit_identical_model_events() {
        let run = || {
            let (mut nt, rec) = traced_net(5);
            drive(&mut nt);
            rec.model_events()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultDecision, FaultInjector};
    use cc_trace::RecordingTracer;

    /// Drops every message addressed to `dst_drop`.
    struct DropTo(usize);
    impl FaultInjector for DropTo {
        fn decision(&self, _r: u64, _s: usize, dst: usize, _i: u32) -> FaultDecision {
            if dst == self.0 {
                FaultDecision::Drop
            } else {
                FaultDecision::Deliver
            }
        }
    }

    #[test]
    fn dropped_messages_are_metered_but_not_delivered() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(4).with_seed(1));
        nt.set_fault_injector(Box::new(DropTo(2)));
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 10).unwrap();
                out.send(2, 20).unwrap();
            }
        })
        .unwrap();
        assert_eq!(nt.cost().messages, 2, "the dropped send was still sent");
        let mut seen = Vec::new();
        nt.step(|node, inbox, _| {
            for e in inbox {
                seen.push((node, e.msg));
            }
        })
        .unwrap();
        assert_eq!(seen, vec![(1, 10)], "node 2's message was dropped");
    }

    #[test]
    fn duplicates_arrive_twice_and_corruption_flips_the_payload() {
        struct Script;
        impl FaultInjector for Script {
            fn decision(&self, _r: u64, _s: usize, dst: usize, _i: u32) -> FaultDecision {
                match dst {
                    1 => FaultDecision::Duplicate,
                    2 => FaultDecision::Corrupt { bit: 0 },
                    _ => FaultDecision::Deliver,
                }
            }
        }
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(4).with_seed(1));
        nt.set_fault_injector(Box::new(Script));
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 10).unwrap();
                out.send(2, 20).unwrap();
            }
        })
        .unwrap();
        let mut got = vec![Vec::new(); 4];
        nt.step(|node, inbox, _| {
            got[node] = inbox.iter().map(|e| e.msg).collect();
        })
        .unwrap();
        assert_eq!(got[1], vec![10, 10]);
        assert_eq!(got[2], vec![21], "bit 0 of 20 flipped");
    }

    /// Defers everything by 2 extra rounds.
    struct DeferAll;
    impl FaultInjector for DeferAll {
        fn decision(&self, _r: u64, _s: usize, _d: usize, _i: u32) -> FaultDecision {
            FaultDecision::Defer { rounds: 2 }
        }
    }

    #[test]
    fn deferred_messages_count_as_pending_and_arrive_late() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_seed(1));
        nt.set_fault_injector(Box::new(DeferAll));
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 7).unwrap();
            }
        })
        .unwrap();
        assert!(nt.has_pending());
        assert_eq!(nt.pending_count(), 1);
        assert!(
            nt.fast_forward(5).is_err(),
            "deferred messages block fast-forward"
        );
        let mut arrivals = Vec::new();
        for round in 1..=3 {
            nt.step(|node, inbox, _| {
                if node == 1 && !inbox.is_empty() {
                    arrivals.push((round, inbox[0].msg));
                }
            })
            .unwrap();
        }
        assert_eq!(
            arrivals,
            vec![(3, 7)],
            "sent in round 0, deferred 2 → arrives in round 3"
        );
        assert!(!nt.has_pending());
    }

    /// Node `0` crashes at round `at`.
    struct CrashAt(u64);
    impl FaultInjector for CrashAt {
        fn crashed(&self, round: u64, node: usize) -> bool {
            node == 0 && round >= self.0
        }
    }

    #[test]
    fn crashed_nodes_stop_computing_and_their_inbox_dies() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_seed(1));
        nt.set_fault_injector(Box::new(CrashAt(1)));
        let mut invocations = Vec::new();
        nt.step(|node, _, out| {
            invocations.push((0u64, node));
            if node == 1 {
                out.send(0, 9).unwrap(); // will be delivered into a dead inbox
            }
        })
        .unwrap();
        assert!(!nt.is_crashed(0), "crash round has not executed yet");
        nt.step(|node, inbox, _| {
            invocations.push((1, node));
            assert!(inbox.is_empty(), "node {node} got {inbox:?}");
        })
        .unwrap();
        assert!(nt.is_crashed(0));
        assert!(!nt.is_crashed(1));
        assert!(
            !invocations.contains(&(1, 0)),
            "crashed node's closure must not run"
        );
        assert!(!nt.has_pending(), "the dead inbox was discarded");
    }

    /// Squeezes the link budget to 1 word in round 0 only.
    struct SqueezeRound0;
    impl FaultInjector for SqueezeRound0 {
        fn link_words(&self, round: u64) -> Option<u64> {
            (round == 0).then_some(1)
        }
    }

    #[test]
    fn bandwidth_squeeze_tightens_the_budget_for_its_rounds_only() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_link_words(4));
        nt.set_fault_injector(Box::new(SqueezeRound0));
        let err = nt
            .step(|node, _, out| {
                if node == 0 {
                    let _ = out.send(1, 1);
                    let _ = out.send(1, 2); // second word exceeds the squeezed budget
                }
            })
            .unwrap_err();
        assert!(matches!(err, NetError::LinkBusy { round: 0, .. }));
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_link_words(4));
        nt.set_fault_injector(Box::new(SqueezeRound0));
        nt.step(|_, _, _| {}).unwrap();
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 1).unwrap();
                out.send(1, 2).unwrap(); // full budget is back in round 1
            }
        })
        .unwrap();
    }

    #[test]
    fn fault_events_follow_batches_and_crashes_follow_round_start() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_seed(1));
        let rec = RecordingTracer::new();
        nt.set_tracer(Box::new(rec.clone()));
        struct Mixed;
        impl FaultInjector for Mixed {
            fn decision(&self, _r: u64, _s: usize, dst: usize, _i: u32) -> FaultDecision {
                if dst == 2 {
                    FaultDecision::Drop
                } else {
                    FaultDecision::Deliver
                }
            }
            fn crashed(&self, round: u64, node: usize) -> bool {
                node == 2 && round >= 1
            }
            fn link_words(&self, round: u64) -> Option<u64> {
                (round == 0).then_some(2)
            }
        }
        nt.set_fault_injector(Box::new(Mixed));
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 1).unwrap();
                out.send(2, 2).unwrap();
            }
        })
        .unwrap();
        nt.step(|_, _, _| {}).unwrap();
        let kinds: Vec<String> = rec
            .model_events()
            .iter()
            .map(|e| e.kind().to_string())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "round_start", // round 0
                "fault",       // squeeze
                "message_batch",
                "message_batch",
                "fault", // drop of 0→2
                "round_end",
                "round_start", // round 1
                "node_crash",  // node 2 crashes
                "round_end",
            ]
        );
    }

    #[test]
    fn detaching_the_injector_restores_clean_execution() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_seed(1));
        nt.set_fault_injector(Box::new(DropTo(1)));
        assert!(nt.take_fault_injector().is_some());
        nt.step(|node, _, out| {
            if node == 0 {
                out.send(1, 5).unwrap();
            }
        })
        .unwrap();
        let mut got = 0;
        nt.step(|node, inbox, _| {
            if node == 1 {
                got = inbox.len();
            }
        })
        .unwrap();
        assert_eq!(got, 1, "no injector, no drops");
    }
}

#[cfg(test)]
mod watchdog_tests {
    use super::*;

    #[test]
    fn round_cap_fires() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_round_cap(2));
        nt.step(|_, _, _| {}).unwrap();
        nt.step(|_, _, _| {}).unwrap();
        let err = nt.step(|_, _, _| {}).unwrap_err();
        assert_eq!(err, NetError::RoundCapExceeded { cap: 2 });
    }

    #[test]
    fn no_cap_by_default() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3));
        for _ in 0..100 {
            nt.step(|_, _, _| {}).unwrap();
        }
        assert_eq!(nt.cost().rounds, 100);
    }

    #[test]
    fn fast_forward_is_not_capped() {
        // The cap guards live computation; analytic jumps (time-encoding)
        // are exempt by design.
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3).with_round_cap(5));
        nt.fast_forward(1_000_000).unwrap();
        assert_eq!(nt.cost().rounds, 1_000_000);
    }
}

#[cfg(test)]
mod broadcast_model_tests {
    use super::*;

    #[test]
    fn unicast_rejected_in_broadcast_model() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(4).broadcast_only());
        let err = nt
            .step(|node, _, out| {
                if node == 0 {
                    let _ = out.send(1, 7);
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            NetError::UnicastInBroadcastModel {
                round: 0,
                src: 0,
                dst: 1
            }
        );
    }

    #[test]
    fn broadcast_allowed_and_counted() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(5).broadcast_only());
        nt.step(|node, _, out| {
            if node == 2 {
                out.broadcast(9).unwrap();
            }
        })
        .unwrap();
        let mut got = 0;
        nt.step(|_, inbox, _| {
            got += inbox.len();
        })
        .unwrap();
        assert_eq!(got, 4);
        assert_eq!(nt.cost().messages, 4);
    }

    #[test]
    fn broadcast_works_in_unicast_model_too() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(3));
        nt.step(|node, _, out| {
            if node == 0 {
                out.broadcast(1).unwrap();
                out.send(1, 2).unwrap(); // mixing is fine in unicast mode
            }
        })
        .unwrap();
        assert_eq!(nt.cost().messages, 3);
    }

    /// First-error semantics: destinations are swept in ascending ID
    /// order, so the reported link is always the *lowest-ID* failing
    /// destination — even when a higher-ID link was exhausted first.
    #[test]
    fn broadcast_error_reports_lowest_failing_link() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(5).with_link_words(1));
        let err = nt
            .step(|node, _, out| {
                if node == 0 {
                    // Exhaust links toward 3 first, then 1.
                    out.send(3, 7).unwrap();
                    out.send(1, 7).unwrap();
                    let _ = out.broadcast(9);
                }
            })
            .unwrap_err();
        assert!(
            matches!(err, NetError::LinkBusy { src: 0, dst: 1, .. }),
            "lowest failing destination must be reported, got {err:?}"
        );
    }

    /// A failed broadcast aborts the round: the messages it staged toward
    /// earlier destinations are charged but never delivered, so there is
    /// no partial-broadcast ambiguity.
    #[test]
    fn failed_broadcast_is_never_partially_delivered() {
        let mut nt: CliqueNet<u64> = CliqueNet::new(NetConfig::kt1(4).with_link_words(1));
        let err = nt.step(|node, _, out| {
            if node == 0 {
                out.send(2, 5).unwrap(); // exhausts 0→2
                let _ = out.broadcast(6); // stages to 1, fails at 2
            }
        });
        assert!(matches!(
            err,
            Err(NetError::LinkBusy { src: 0, dst: 2, .. })
        ));
    }

    /// The broadcast-only flag is restored even when the sweep aborts on
    /// an error, so later sends in the same round are still validated
    /// under the model's rules.
    #[test]
    fn broadcast_only_flag_survives_a_failed_broadcast() {
        let mut nt: CliqueNet<u64> =
            CliqueNet::new(NetConfig::kt1(4).broadcast_only().with_link_words(1));
        let err = nt
            .step(|node, _, out| {
                if node == 0 {
                    out.broadcast(1).unwrap();
                    let _ = out.broadcast(2); // budget gone: fails at dst 1
                    let _ = out.send(2, 3); // must still be model-checked
                }
            })
            .unwrap_err();
        // The *first* latched error wins (the LinkBusy), but the unicast
        // attempt must have been rejected, not silently staged.
        assert!(matches!(err, NetError::LinkBusy { src: 0, dst: 1, .. }));
    }

    /// Broadcast moves the payload onto the final link: exactly `n − 2`
    /// clones for `n − 1` destinations.
    #[test]
    fn broadcast_clones_all_but_the_last_link() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        #[derive(Debug)]
        struct Counting(Arc<AtomicUsize>);
        impl Clone for Counting {
            fn clone(&self) -> Self {
                self.0.fetch_add(1, Ordering::SeqCst);
                Counting(Arc::clone(&self.0))
            }
        }
        impl Wire for Counting {
            fn words(&self) -> u64 {
                1
            }
        }

        let clones = Arc::new(AtomicUsize::new(0));
        let n = 6;
        let mut nt: CliqueNet<Counting> = CliqueNet::new(NetConfig::kt1(n));
        let payload = Counting(Arc::clone(&clones));
        let mut sent = Some(payload);
        nt.step(|node, _, out| {
            if node == 2 {
                out.broadcast(sent.take().expect("one sender")).unwrap();
            }
        })
        .unwrap();
        assert_eq!(
            clones.load(Ordering::SeqCst),
            n - 2,
            "n − 1 destinations, last one takes the payload by move"
        );
    }

    /// `Arc` payloads make broadcast allocation-free: every recipient's
    /// envelope shares the sender's single allocation.
    #[test]
    fn broadcast_arc_payload_shares_one_allocation() {
        use std::sync::Arc;
        let n = 5;
        let mut nt: CliqueNet<Arc<Vec<u64>>> = CliqueNet::new(NetConfig::kt1(n));
        let payload = Arc::new(vec![1u64, 2, 3]);
        let origin = Arc::clone(&payload);
        let mut sent = Some(payload);
        nt.step(|node, _, out| {
            if node == 0 {
                out.broadcast(sent.take().expect("one sender")).unwrap();
            }
        })
        .unwrap();
        let mut seen = 0;
        nt.step(|node, inbox, _| {
            if node != 0 {
                assert_eq!(inbox.len(), 1);
                assert!(
                    Arc::ptr_eq(&inbox[0].msg, &origin),
                    "recipient {node} must share the broadcast allocation"
                );
                seen += 1;
            }
        })
        .unwrap();
        assert_eq!(seen, n - 1);
        // Words are charged per copy regardless of sharing.
        assert_eq!(nt.cost().words, 3 * (n as u64 - 1));
    }
}

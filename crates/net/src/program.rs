//! Typed node programs: an alternative, stricter way to drive the
//! simulator.
//!
//! The closure API of [`CliqueNet::step`] keeps per-node state in vectors
//! the driver owns; nothing but discipline stops a closure from peeking at
//! another node's entry. A [`NodeProgram`] makes the isolation structural:
//! each node owns a value of the program type, and the [`run_program`]
//! driver hands every callback exactly one node's state — reading a
//! neighbor's state is not expressible.
//!
//! The paper's big algorithms in `cc-core` use the closure API (they are
//! driver-orchestrated by nature: coordinator steps, collectives, phase
//! barriers). The program API is the right shape for *reactive* protocols —
//! flooding, echo, token passing — and for tests that want the type system
//! to enforce locality. [`examples::FloodEcho`] is the reference user: a
//! spanning-tree flood/echo from a root, a classic whose message pattern
//! (one message per edge per direction, `O(diameter)` rounds) is easy to
//! assert.

use crate::net::{CliqueNet, Envelope, Outbox};
use crate::wire::Wire;
use crate::NetError;

/// A per-node protocol state machine.
pub trait NodeProgram {
    /// Message type exchanged by the protocol.
    type Msg: Wire;

    /// Called once in round 0, before any delivery, to send initial
    /// messages.
    fn start(&mut self, me: usize, n: usize, out: &mut Outbox<'_, Self::Msg>);

    /// Called every subsequent round with the node's inbox. Return `true`
    /// when this node has terminated (the driver stops when every node has
    /// terminated and no messages are in flight).
    fn round(
        &mut self,
        me: usize,
        inbox: &[Envelope<Self::Msg>],
        out: &mut Outbox<'_, Self::Msg>,
    ) -> bool;
}

/// Runs one program instance per node until every node reports done and
/// the network is quiet, or `max_rounds` elapses.
///
/// Returns the final program states (so callers can extract outputs).
///
/// # Errors
///
/// Propagates simulator errors; returns [`NetError::RoundCapExceeded`]
/// if the protocol does not terminate within `max_rounds`.
pub fn run_program<P: NodeProgram>(
    net: &mut CliqueNet<P::Msg>,
    mut programs: Vec<P>,
    max_rounds: u64,
) -> Result<Vec<P>, NetError>
where
    P::Msg: Clone,
{
    let n = net.n();
    assert_eq!(programs.len(), n, "one program per node");
    let mut done = vec![false; n];
    net.step(|node, _inbox, out| {
        programs[node].start(node, n, out);
    })?;
    let mut rounds = 1u64;
    loop {
        // A fail-stop-crashed node can never report done; counting it as
        // done keeps fault-injected protocols terminating.
        let all_done = done
            .iter()
            .enumerate()
            .all(|(v, &d)| d || net.is_crashed(v));
        if all_done && !net.has_pending() {
            return Ok(programs);
        }
        if rounds >= max_rounds {
            return Err(NetError::RoundCapExceeded { cap: max_rounds });
        }
        net.step(|node, inbox, out| {
            if programs[node].round(node, inbox, out) {
                done[node] = true;
            }
        })?;
        rounds += 1;
    }
}

/// Reference programs.
pub mod examples {
    use super::*;

    /// Flood/echo spanning tree from a root over a *subgraph* of the
    /// clique (the input graph): the root floods, nodes adopt the first
    /// sender as parent and forward, leaves echo back, and the echo
    /// converges on the root, which then knows the size of its component.
    #[derive(Clone, Debug)]
    pub struct FloodEcho {
        /// Neighbors in the input graph.
        pub neighbors: Vec<usize>,
        /// Whether this node is the root.
        pub root: bool,
        /// Parent in the flood tree (set on first receipt).
        pub parent: Option<usize>,
        /// Children yet to echo.
        awaiting: Vec<usize>,
        /// Subtree size accumulated from echoes (incl. self).
        pub subtree: u64,
        started: bool,
        terminated: bool,
        echoed: bool,
    }

    /// Message words: `FLOOD` or `ECHO(count)`.
    const FLOOD: u64 = 0;
    const ECHO: u64 = 1;

    impl FloodEcho {
        /// A node with the given input-graph neighbors.
        pub fn new(neighbors: Vec<usize>, root: bool) -> Self {
            FloodEcho {
                neighbors,
                root,
                parent: None,
                awaiting: Vec::new(),
                subtree: 1,
                started: false,
                terminated: false,
                echoed: false,
            }
        }

        fn begin_flood(&mut self, me: usize, out: &mut Outbox<'_, Vec<u64>>) {
            self.started = true;
            self.awaiting = self
                .neighbors
                .iter()
                .copied()
                .filter(|&v| Some(v) != self.parent)
                .collect();
            for &v in &self.awaiting.clone() {
                let _ = out.send(v, vec![FLOOD]);
            }
            let _ = me;
            if self.awaiting.is_empty() {
                self.echo_ready();
            }
        }

        fn echo_ready(&mut self) {
            self.terminated = true;
        }

        /// Whether this node ended up in the root's flood tree.
        pub fn reached(&self) -> bool {
            self.root || self.parent.is_some()
        }
    }

    impl NodeProgram for FloodEcho {
        type Msg = Vec<u64>;

        fn start(&mut self, me: usize, _n: usize, out: &mut Outbox<'_, Vec<u64>>) {
            if self.root {
                self.begin_flood(me, out);
            }
        }

        fn round(
            &mut self,
            me: usize,
            inbox: &[Envelope<Vec<u64>>],
            out: &mut Outbox<'_, Vec<u64>>,
        ) -> bool {
            for env in inbox {
                match env.msg[0] {
                    FLOOD => {
                        if self.root || self.parent.is_some() {
                            // Already in the tree: immediately echo 0 so the
                            // sender does not wait for us.
                            let _ = out.send(env.src, vec![ECHO, 0]);
                        } else {
                            self.parent = Some(env.src);
                            self.begin_flood(me, out);
                        }
                    }
                    ECHO => {
                        self.awaiting.retain(|&v| v != env.src);
                        self.subtree += env.msg[1];
                        if self.started && self.awaiting.is_empty() && !self.terminated {
                            self.echo_ready();
                        }
                    }
                    _ => unreachable!("unknown message tag"),
                }
            }
            if self.terminated {
                if let Some(p) = self.parent {
                    if !self.echoed {
                        // Send the echo exactly once.
                        self.echoed = true;
                        let _ = out.send(p, vec![ECHO, self.subtree]);
                    }
                }
                return true;
            }
            // Nodes never reached terminate trivially once the flood has
            // settled; they report done when they have nothing pending.
            !self.started && self.parent.is_none() && !self.root
        }
    }
}

#[cfg(test)]
mod tests {
    use super::examples::FloodEcho;
    use super::*;
    use crate::NetConfig;

    fn programs_for(g: &[Vec<usize>], root: usize) -> Vec<FloodEcho> {
        g.iter()
            .enumerate()
            .map(|(v, nb)| FloodEcho::new(nb.clone(), v == root))
            .collect()
    }

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    #[test]
    fn flood_echo_counts_component_size() {
        // Path 0-1-2-3 plus isolated node 4.
        let adj = adjacency(5, &[(0, 1), (1, 2), (2, 3)]);
        let mut net: CliqueNet<Vec<u64>> = CliqueNet::new(NetConfig::kt1(5));
        let programs = run_program(&mut net, programs_for(&adj, 0), 100).unwrap();
        assert_eq!(programs[0].subtree, 4, "root counts its component");
        assert!(programs[1].reached() && programs[3].reached());
        assert!(!programs[4].reached(), "isolated node untouched");
    }

    #[test]
    fn flood_echo_on_a_cycle_uses_one_message_per_direction_per_edge() {
        let n = 8;
        let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let adj = adjacency(n, &edges);
        let mut net: CliqueNet<Vec<u64>> = CliqueNet::new(NetConfig::kt1(n));
        let programs = run_program(&mut net, programs_for(&adj, 3), 100).unwrap();
        assert_eq!(programs[3].subtree, n as u64);
        // Flood + echo: at most 2 messages per edge direction.
        assert!(net.cost().messages <= 4 * edges.len() as u64);
        // Rounds ~ diameter, far below n rounds for a ring of 8.
        assert!(net.cost().rounds <= 3 + n as u64);
    }

    #[test]
    fn nontermination_is_caught_by_the_cap() {
        #[derive(Debug)]
        struct Chatter;
        impl NodeProgram for Chatter {
            type Msg = Vec<u64>;
            fn start(&mut self, me: usize, n: usize, out: &mut Outbox<'_, Vec<u64>>) {
                let _ = out.send((me + 1) % n, vec![0]);
            }
            fn round(
                &mut self,
                me: usize,
                _inbox: &[Envelope<Vec<u64>>],
                out: &mut Outbox<'_, Vec<u64>>,
            ) -> bool {
                let _ = out.send((me + 1) % 4, vec![0]);
                false // never done
            }
        }
        let mut net: CliqueNet<Vec<u64>> = CliqueNet::new(NetConfig::kt1(4));
        let err = run_program(&mut net, vec![Chatter, Chatter, Chatter, Chatter], 20).unwrap_err();
        assert_eq!(err, NetError::RoundCapExceeded { cap: 20 });
    }

    #[test]
    fn two_node_edge() {
        let adj = adjacency(2, &[(0, 1)]);
        let mut net: CliqueNet<Vec<u64>> = CliqueNet::new(NetConfig::kt1(2));
        let programs = run_program(&mut net, programs_for(&adj, 1), 50).unwrap();
        assert_eq!(programs[1].subtree, 2);
    }
}

//! Simulator configuration: model size, bandwidth, initial knowledge.
//!
//! The bandwidth / link-mode / mapping axes are owned by
//! [`cc_model::ModelSpec`]; a [`NetConfig`] binds a spec to a concrete
//! clique size (plus simulator-local concerns: knowledge, seed,
//! transcripts, watchdogs). [`NetConfig::from_model`] is the validated
//! entry point, and [`NetConfig::model`] recovers the spec that send
//! admission ([`crate::SendRules`]) is enforced against.

use cc_model::{LinkMode, Mapping, ModelError, ModelSpec};

/// Initial-knowledge variant of the Congested Clique (Section 1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Knowledge {
    /// `KT0`: a node knows only its own ID; links are anonymous ports.
    Kt0,
    /// `KT1`: a node additionally knows the IDs of all `n − 1` neighbors
    /// (i.e. the port → ID mapping).
    Kt1,
}

/// Default per-link budget: how many `⌈log₂ n⌉`-bit words one link may carry
/// per round. The model allows "a message of `O(log n)` bits"; this is the
/// explicit constant (messages carrying an edge + weight need 3 words, plus
/// slack for tags). Mirrors [`cc_model::DEFAULT_BANDWIDTH_WORDS`].
pub const DEFAULT_LINK_WORDS: u64 = cc_model::DEFAULT_BANDWIDTH_WORDS;

/// Configuration of a [`CliqueNet`](crate::CliqueNet).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of machines `n ≥ 2`.
    pub n: usize,
    /// Initial-knowledge variant.
    pub knowledge: Knowledge,
    /// Words per ordered link per round (the `O(log n)` bits of the model;
    /// raise to `Θ(log⁴ n)` words for the paper's `O(log⁵ n)`-bit ablation).
    pub link_words: u64,
    /// Seed for all simulator randomness (per-node private RNG streams and
    /// the hidden KT0 port permutations).
    pub seed: u64,
    /// Record every message's `(round, src, dst)` for post-hoc audits
    /// (partition-crossing analyses of the Section 3/4 lower bounds).
    /// Off by default — transcripts of large runs are big.
    pub record_transcript: bool,
    /// Optional watchdog: error out if a run exceeds this many rounds
    /// (catches non-terminating protocols in tests and CI). `None` (the
    /// default) means unlimited.
    pub round_cap: Option<u64>,
    /// The *broadcast* variant of the Congested Clique (the paper's
    /// footnote 1): a node must send the *same* message along all its
    /// links in a round, or nothing. Point-to-point sends are rejected;
    /// use [`Outbox::broadcast`](crate::Outbox::broadcast).
    pub broadcast_only: bool,
    /// Node-to-machine mapping of the model ([`Mapping::OneToOne`] is
    /// the clique proper). `CliqueNet` itself always executes the
    /// *logical* model — the mapping changes no inbox, cost, or fault
    /// decision — but it travels with the config so execution engines
    /// (the `cc-runtime` k-machine backend) and harnesses can account
    /// machine rounds for the very spec the run was admitted under.
    pub mapping: Mapping,
}

impl NetConfig {
    /// KT1 config with default bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn kt1(n: usize) -> Self {
        assert!(n >= 2, "a clique needs at least 2 machines");
        NetConfig {
            n,
            knowledge: Knowledge::Kt1,
            link_words: DEFAULT_LINK_WORDS,
            seed: 0,
            record_transcript: false,
            round_cap: None,
            broadcast_only: false,
            mapping: Mapping::OneToOne,
        }
    }

    /// A KT1 config implementing `spec` on an `n`-clique — the validated
    /// entry point of the model grid.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelSpec::validate_for`] (clique too small, zero
    /// bandwidth, more machines than nodes).
    pub fn from_model(n: usize, spec: &ModelSpec) -> Result<Self, ModelError> {
        spec.validate_for(n)?;
        Ok(Self::kt1(n).with_model(spec))
    }

    /// KT0 config with default bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn kt0(n: usize) -> Self {
        NetConfig {
            knowledge: Knowledge::Kt0,
            ..Self::kt1(n)
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables transcript recording (see `record_transcript`).
    pub fn with_transcript(mut self) -> Self {
        self.record_transcript = true;
        self
    }

    /// Switches to the broadcast variant (see `broadcast_only`).
    pub fn broadcast_only(mut self) -> Self {
        self.broadcast_only = true;
        self
    }

    /// Sets the round watchdog (see `round_cap`).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_round_cap(mut self, cap: u64) -> Self {
        assert!(cap >= 1, "a zero round cap would reject every run");
        self.round_cap = Some(cap);
        self
    }

    /// Replaces the per-link word budget.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn with_link_words(mut self, words: u64) -> Self {
        assert!(words >= 1, "a link must carry at least one word per round");
        self.link_words = words;
        self
    }

    /// Replaces the bandwidth, link mode, and mapping with `spec`'s
    /// (the panicking builder twin of [`NetConfig::from_model`]).
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid for this clique size.
    #[must_use]
    pub fn with_model(mut self, spec: &ModelSpec) -> Self {
        spec.validate_for(self.n)
            .unwrap_or_else(|e| panic!("model spec invalid for n={}: {e}", self.n));
        self.link_words = spec.bandwidth_words_per_link;
        self.broadcast_only = spec.link_mode == LinkMode::BroadcastOnly;
        self.mapping = spec.mapping;
        self
    }

    /// The [`ModelSpec`] this config implements — what send admission
    /// and machine accounting are checked against.
    pub fn model(&self) -> ModelSpec {
        ModelSpec {
            bandwidth_words_per_link: self.link_words,
            link_mode: if self.broadcast_only {
                LinkMode::BroadcastOnly
            } else {
                LinkMode::Unicast
            },
            mapping: self.mapping,
        }
    }

    /// Bits per word: `⌈log₂ n⌉` (at least 1) — the `O(log n)` unit of the
    /// model in which message sizes are expressed.
    pub fn word_bits(&self) -> u64 {
        (usize::BITS - (self.n - 1).leading_zeros()).max(1) as u64
    }

    /// The `O(log⁵ n)`-bit bandwidth of the "furthermore" parts of Theorems
    /// 4 and 7, expressed in words: `⌈log₂ n⌉⁴` words ≈ `log⁵ n` bits.
    pub fn polylog_bandwidth(n: usize) -> u64 {
        let lg = (usize::BITS - (n - 1).leading_zeros()).max(1) as u64;
        lg.pow(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = NetConfig::kt1(64).with_seed(7).with_link_words(3);
        assert_eq!(c.n, 64);
        assert_eq!(c.knowledge, Knowledge::Kt1);
        assert_eq!(c.seed, 7);
        assert_eq!(c.link_words, 3);
        assert_eq!(NetConfig::kt0(8).knowledge, Knowledge::Kt0);
    }

    #[test]
    fn word_bits_is_ceil_log2() {
        assert_eq!(NetConfig::kt1(2).word_bits(), 1);
        assert_eq!(NetConfig::kt1(3).word_bits(), 2);
        assert_eq!(NetConfig::kt1(64).word_bits(), 6);
        assert_eq!(NetConfig::kt1(65).word_bits(), 7);
        assert_eq!(NetConfig::kt1(1024).word_bits(), 10);
    }

    #[test]
    fn polylog_bandwidth_grows() {
        assert_eq!(NetConfig::polylog_bandwidth(1024), 10u64.pow(4));
        assert!(NetConfig::polylog_bandwidth(1 << 16) > NetConfig::polylog_bandwidth(1 << 8));
    }

    #[test]
    fn model_round_trips_through_the_config() {
        let spec = ModelSpec::clique()
            .with_bandwidth(3)
            .broadcast_only()
            .kmachine(4);
        let cfg = NetConfig::from_model(16, &spec).expect("valid spec");
        assert_eq!(cfg.link_words, 3);
        assert!(cfg.broadcast_only);
        assert_eq!(cfg.mapping, Mapping::KMachine(4));
        assert_eq!(cfg.model(), spec);
        // The default config is exactly the paper's model.
        assert_eq!(NetConfig::kt1(16).model(), ModelSpec::clique());
    }

    #[test]
    fn from_model_rejects_incompatible_specs() {
        let spec = ModelSpec::clique().kmachine(8);
        assert_eq!(
            NetConfig::from_model(4, &spec),
            Err(ModelError::MoreMachinesThanNodes { k: 8, n: 4 })
        );
        assert_eq!(
            NetConfig::from_model(1, &ModelSpec::clique()),
            Err(ModelError::CliqueTooSmall { n: 1 })
        );
    }

    #[test]
    #[should_panic(expected = "model spec invalid")]
    fn with_model_panics_on_invalid_spec() {
        let _ = NetConfig::kt1(4).with_model(&ModelSpec::clique().kmachine(9));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_clique() {
        NetConfig::kt1(1);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn rejects_zero_bandwidth() {
        NetConfig::kt1(4).with_link_words(0);
    }
}

//! Flat per-round `(src, dst)` message-batch aggregation.
//!
//! Tracing sinks receive one [`MessageBatch`](cc_trace::Event::MessageBatch)
//! per ordered link per round, sorted by `(src, dst)`. The aggregation used
//! to live in a `BTreeMap<(u32, u32), (u32, u64)>` rebuilt every round —
//! a tree allocation per touched link, on the hot path of every traced
//! run. [`RoundBatches`] replaces it with two pooled flat buffers: a
//! destination-indexed scratch row for the sender currently staging, and
//! an output vector the finished rows append to.
//!
//! The sortedness contract is structural instead of tree-enforced:
//! senders stage contiguously and in ascending ID order (that is how
//! every engine executes a round), so flushing each sender's row in
//! destination order yields a globally `(src, dst)`-sorted stream with no
//! per-round allocation in steady state.

/// One finalized batch row: `((src, dst), (count, words))` — the shape
/// the runtime's `RoundOutput::batches` carries.
pub type BatchEntry = ((u32, u32), (u32, u64));

/// Pooled flat accumulator for one round's per-link batches.
///
/// Usage per round: [`begin_round`](RoundBatches::begin_round), then per
/// sender any number of [`add`](RoundBatches::add) calls followed by one
/// [`flush_sender`](RoundBatches::flush_sender) (senders in ascending ID
/// order), then read [`entries`](RoundBatches::entries) or
/// [`take_entries`](RoundBatches::take_entries).
#[derive(Debug, Default)]
pub struct RoundBatches {
    /// `(count, words)` toward each destination for the current sender.
    row: Vec<(u32, u64)>,
    /// Destinations the current sender has touched, unsorted.
    touched: Vec<u32>,
    /// Finalized `(src, dst, count, words)` entries for the round.
    out: Vec<(u32, u32, u32, u64)>,
}

impl RoundBatches {
    /// A fresh accumulator (buffers grow on first use and are then
    /// retained for the lifetime of the value).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets for a round over an `n`-node clique, keeping capacity.
    pub fn begin_round(&mut self, n: usize) {
        if self.row.len() < n {
            self.row.resize(n, (0, 0));
        }
        self.out.clear();
        debug_assert!(self.touched.is_empty(), "flush_sender closes every sender");
    }

    /// Records one message of `words` words from the current sender to
    /// `dst`.
    pub fn add(&mut self, dst: u32, words: u64) {
        let slot = &mut self.row[dst as usize];
        if slot.0 == 0 {
            self.touched.push(dst);
        }
        slot.0 += 1;
        slot.1 += words;
    }

    /// Closes the current sender `src`: folds its scratch row into the
    /// output in destination order and clears the row for the next
    /// sender. Call with ascending `src` for a sorted round stream.
    pub fn flush_sender(&mut self, src: u32) {
        if self.touched.is_empty() {
            return;
        }
        self.touched.sort_unstable();
        for dst in self.touched.drain(..) {
            let (count, words) = std::mem::take(&mut self.row[dst as usize]);
            self.out.push((src, dst, count, words));
        }
    }

    /// The finalized `(src, dst, count, words)` entries so far this round.
    pub fn entries(&self) -> &[(u32, u32, u32, u64)] {
        &self.out
    }

    /// Drains the round's entries in the [`BatchEntry`] shape the
    /// runtime's `RoundOutput` carries.
    pub fn take_entries(&mut self) -> Vec<BatchEntry> {
        self.out
            .drain(..)
            .map(|(src, dst, count, words)| ((src, dst), (count, words)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_link_and_sorts_by_src_then_dst() {
        let mut b = RoundBatches::new();
        b.begin_round(4);
        // Sender 0: two messages to 3, one to 1 (staged out of dst order).
        b.add(3, 2);
        b.add(1, 1);
        b.add(3, 1);
        b.flush_sender(0);
        // Sender 2: one message to 0.
        b.add(0, 5);
        b.flush_sender(2);
        assert_eq!(b.entries(), &[(0, 1, 1, 1), (0, 3, 2, 3), (2, 0, 1, 5)]);
    }

    #[test]
    fn rounds_reset_but_capacity_is_retained() {
        let mut b = RoundBatches::new();
        b.begin_round(8);
        b.add(7, 1);
        b.flush_sender(0);
        assert_eq!(b.entries().len(), 1);
        b.begin_round(8);
        assert!(b.entries().is_empty(), "begin_round clears the stream");
        b.add(7, 4);
        b.flush_sender(3);
        assert_eq!(b.entries(), &[(3, 7, 1, 4)]);
    }

    #[test]
    fn silent_senders_contribute_nothing() {
        let mut b = RoundBatches::new();
        b.begin_round(2);
        b.flush_sender(0);
        b.flush_sender(1);
        assert!(b.entries().is_empty());
    }

    #[test]
    fn take_entries_matches_the_round_output_shape() {
        let mut b = RoundBatches::new();
        b.begin_round(3);
        b.add(1, 2);
        b.flush_sender(0);
        assert_eq!(b.take_entries(), vec![((0, 1), (1, 2))]);
        assert!(b.entries().is_empty());
    }
}

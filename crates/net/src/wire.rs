//! Message-size accounting, payload corruption, and the checked frame
//! codec.
//!
//! Every message type an algorithm sends through the simulator must say how
//! many `⌈log₂ n⌉`-bit words it occupies. The simulator charges this size
//! against the per-link budget and the global word/bit counters; algorithms
//! therefore cannot "cheat" by stuffing large payloads into one message.
//!
//! Two fault-injection hooks live alongside [`Wire`]:
//!
//! * [`Wire::corrupt_bit`] lets the chaos layer flip a deterministic bit
//!   in an in-flight payload (types that cannot express a flip report so
//!   and the fault degrades to a drop);
//! * [`encode_frame`] / [`decode_frame`] are a checksummed word-frame
//!   codec whose decoder returns a typed [`WireError`] on *any*
//!   single-word corruption — never a panic, and never a silently wrong
//!   payload (the checksum fold is a bijection in the accumulator, so a
//!   change to any one word always changes the checksum).

use std::error::Error;
use std::fmt;

/// Types that can cross a clique link.
pub trait Wire {
    /// Size in words (1 word = `⌈log₂ n⌉` bits). Must be ≥ 1: even an empty
    /// signal occupies one message slot of the model.
    fn words(&self) -> u64;

    /// Flips one deterministic bit of the payload, selected by `bit`
    /// (reduced modulo the payload's capacity). Returns `true` if a flip
    /// happened; types with no mutable bits (e.g. `()`) return `false`,
    /// in which case the chaos layer records the corruption attempt but
    /// drops the message instead.
    fn corrupt_bit(&mut self, bit: u64) -> bool {
        let _ = bit;
        false
    }
}

impl Wire for u64 {
    fn words(&self) -> u64 {
        1
    }

    fn corrupt_bit(&mut self, bit: u64) -> bool {
        *self ^= 1u64 << (bit % 64);
        true
    }
}

impl Wire for u32 {
    fn words(&self) -> u64 {
        1
    }

    fn corrupt_bit(&mut self, bit: u64) -> bool {
        *self ^= 1u32 << (bit % 32);
        true
    }
}

impl Wire for usize {
    fn words(&self) -> u64 {
        1
    }

    fn corrupt_bit(&mut self, bit: u64) -> bool {
        *self ^= 1usize << (bit % usize::BITS as u64);
        true
    }
}

impl Wire for () {
    fn words(&self) -> u64 {
        1
    }
}

impl Wire for (u64, u64) {
    fn words(&self) -> u64 {
        2
    }

    fn corrupt_bit(&mut self, bit: u64) -> bool {
        match (bit / 64) % 2 {
            0 => self.0.corrupt_bit(bit),
            _ => self.1.corrupt_bit(bit),
        }
    }
}

impl Wire for (u64, u64, u64) {
    fn words(&self) -> u64 {
        3
    }

    fn corrupt_bit(&mut self, bit: u64) -> bool {
        match (bit / 64) % 3 {
            0 => self.0.corrupt_bit(bit),
            1 => self.1.corrupt_bit(bit),
            _ => self.2.corrupt_bit(bit),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn words(&self) -> u64 {
        self.iter().map(Wire::words).sum::<u64>().max(1)
    }

    fn corrupt_bit(&mut self, bit: u64) -> bool {
        if self.is_empty() {
            return false;
        }
        let idx = ((bit >> 6) % self.len() as u64) as usize;
        self[idx].corrupt_bit(bit)
    }
}

impl<T: Wire + ?Sized> Wire for &T {
    fn words(&self) -> u64 {
        (**self).words()
    }
}

/// Shared payloads: cloning an `Arc<T>` message is a reference-count
/// bump, which is what makes [`Outbox::broadcast`](crate::Outbox)
/// genuinely clone-free for large payloads — all `n − 1` envelopes share
/// one allocation.
///
/// Corruption is copy-on-write: a fault flipping a bit of one in-flight
/// envelope must not rewrite the payload under the sender or the other
/// `n − 2` recipients, so the flip detaches a private copy first (via
/// [`std::sync::Arc::make_mut`]; a uniquely-owned payload is flipped in
/// place).
impl<T: Wire + Clone> Wire for std::sync::Arc<T> {
    fn words(&self) -> u64 {
        (**self).words()
    }

    fn corrupt_bit(&mut self, bit: u64) -> bool {
        std::sync::Arc::make_mut(self).corrupt_bit(bit)
    }
}

/// A malformed or corrupted frame, reported by [`decode_frame`].
///
/// Decoding untrusted words must never panic: every corruption a single
/// bit flip can produce maps to one of these variants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer words than the header demands.
    Truncated {
        /// Words present.
        have: usize,
        /// Words the frame claims to need (header + payload).
        need: u64,
    },
    /// More words than the header demands (frames are exact-length).
    TrailingWords {
        /// Words present.
        have: usize,
        /// Words the frame claims to need (header + payload).
        need: u64,
    },
    /// The length header is beyond any frame this codec will produce.
    LengthOverflow {
        /// The claimed payload length.
        len: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the frame header.
        expected: u64,
        /// Checksum recomputed from the payload.
        found: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} words, need {need}")
            }
            WireError::TrailingWords { have, need } => {
                write!(f, "trailing words in frame: have {have}, need {need}")
            }
            WireError::LengthOverflow { len } => {
                write!(f, "frame length header {len} overflows the codec limit")
            }
            WireError::ChecksumMismatch { expected, found } => write!(
                f,
                "frame checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
            ),
        }
    }
}

impl Error for WireError {}

/// Largest payload (in words) [`encode_frame`] will produce and
/// [`decode_frame`] will accept. Far above any congested-clique message
/// (budgets are `O(log n)` words); its job is to bound allocation when a
/// bit flip lands in the length header.
pub const MAX_FRAME_WORDS: u64 = 1 << 32;

/// SplitMix64 finalizer: a bijection on `u64` (constant add, then three
/// xorshift-multiply rounds, each individually invertible).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checksum of a payload: fold `acc = mix64(acc ⊕ (wordᵢ + i))`, seeded
/// with `mix64(len)`.
///
/// Each fold step is a bijection in `acc` (for fixed word) and injective
/// in the word (for fixed `acc`), so changing any single word — in
/// particular flipping any single bit — always changes the checksum.
fn frame_checksum(payload: &[u64]) -> u64 {
    let mut acc = mix64(payload.len() as u64);
    for (i, w) in payload.iter().enumerate() {
        acc = mix64(acc ^ w.wrapping_add(i as u64));
    }
    acc
}

/// Encodes `payload` as a self-describing frame:
/// `[len, checksum, payload...]`.
///
/// # Panics
///
/// If `payload` exceeds [`MAX_FRAME_WORDS`] words (not reachable through
/// budgeted sends).
pub fn encode_frame(payload: &[u64]) -> Vec<u64> {
    assert!(
        (payload.len() as u64) < MAX_FRAME_WORDS,
        "frame payload of {} words exceeds MAX_FRAME_WORDS",
        payload.len()
    );
    let mut out = Vec::with_capacity(payload.len() + 2);
    out.push(payload.len() as u64);
    out.push(frame_checksum(payload));
    out.extend_from_slice(payload);
    out
}

/// Decodes a frame produced by [`encode_frame`], verifying length and
/// checksum. Strict: the slice must be exactly `len + 2` words.
///
/// # Errors
///
/// A typed [`WireError`] on any malformation; never panics, for any
/// input. Any single-bit corruption of a well-formed frame is detected:
/// a flip in the length header fails the length check, a flip in the
/// checksum or payload fails the (bijective-fold) checksum check.
pub fn decode_frame(frame: &[u64]) -> Result<Vec<u64>, WireError> {
    if frame.len() < 2 {
        return Err(WireError::Truncated {
            have: frame.len(),
            need: 2,
        });
    }
    let len = frame[0];
    if len >= MAX_FRAME_WORDS {
        return Err(WireError::LengthOverflow { len });
    }
    let need = len + 2;
    if (frame.len() as u64) < need {
        return Err(WireError::Truncated {
            have: frame.len(),
            need,
        });
    }
    if (frame.len() as u64) > need {
        return Err(WireError::TrailingWords {
            have: frame.len(),
            need,
        });
    }
    let payload = &frame[2..];
    let found = frame_checksum(payload);
    if found != frame[1] {
        return Err(WireError::ChecksumMismatch {
            expected: frame[1],
            found,
        });
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!(5u32.words(), 1);
        assert_eq!(5usize.words(), 1);
        assert_eq!(().words(), 1);
        assert_eq!((1u64, 2u64).words(), 2);
        assert_eq!((1u64, 2u64, 3u64).words(), 3);
    }

    #[test]
    fn vec_sums_and_floors_at_one() {
        assert_eq!(vec![1u64, 2, 3].words(), 3);
        assert_eq!(
            Vec::<u64>::new().words(),
            1,
            "empty payload still occupies a slot"
        );
    }

    #[test]
    fn reference_delegates() {
        let v = vec![(1u64, 2u64); 4];
        assert_eq!(v.words(), 8);
    }

    #[test]
    fn corrupt_bit_flips_exactly_one_bit_of_scalars() {
        let mut x = 0u64;
        assert!(x.corrupt_bit(7));
        assert_eq!(x, 1 << 7);
        assert!(x.corrupt_bit(71), "bit index reduces mod 64");
        assert_eq!(x, 0);

        let mut y = 0u32;
        assert!(y.corrupt_bit(33));
        assert_eq!(y, 1 << 1);

        let mut u = 0usize;
        assert!(u.corrupt_bit(3));
        assert_eq!(u, 8);
    }

    #[test]
    fn corrupt_bit_on_unflippable_payloads_reports_false() {
        assert!(!().corrupt_bit(5));
        let mut empty: Vec<u64> = Vec::new();
        assert!(!empty.corrupt_bit(5));
    }

    #[test]
    fn corrupt_bit_targets_one_tuple_field_or_vec_element() {
        let mut t = (0u64, 0u64, 0u64);
        assert!(t.corrupt_bit(64 + 3)); // field (1/1)%3 = 1, bit 3
        assert_eq!(t, (0, 8, 0));

        let mut v = vec![0u64; 4];
        assert!(v.corrupt_bit(2 * 64 + 5)); // element 2, bit 5
        assert_eq!(v, vec![0, 0, 32, 0]);
    }

    #[test]
    fn frame_round_trips_and_rejects_malformed_shapes() {
        let payload = vec![3u64, 1, 4, 1, 5];
        let frame = encode_frame(&payload);
        assert_eq!(frame.len(), payload.len() + 2);
        assert_eq!(decode_frame(&frame), Ok(payload.clone()));
        assert_eq!(decode_frame(&encode_frame(&[])), Ok(vec![]));

        assert!(matches!(
            decode_frame(&[]),
            Err(WireError::Truncated { have: 0, need: 2 })
        ));
        assert!(matches!(
            decode_frame(&frame[..4]),
            Err(WireError::Truncated { .. })
        ));
        let mut long = frame.clone();
        long.push(0);
        assert!(matches!(
            decode_frame(&long),
            Err(WireError::TrailingWords { .. })
        ));
        assert!(matches!(
            decode_frame(&[u64::MAX, 0]),
            Err(WireError::LengthOverflow { .. })
        ));
        let mut bad = frame;
        bad[1] ^= 1;
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    /// Length headers at and around the `MAX_FRAME_WORDS` boundary: one
    /// below the cap is structurally valid (merely truncated here), the
    /// cap itself and everything above it must be rejected as overflow
    /// *before* any `len + 2` arithmetic can wrap.
    #[test]
    fn length_header_boundary_cases() {
        assert_eq!(
            decode_frame(&[MAX_FRAME_WORDS, 0]),
            Err(WireError::LengthOverflow {
                len: MAX_FRAME_WORDS
            })
        );
        assert_eq!(
            decode_frame(&[MAX_FRAME_WORDS - 1, 0]),
            Err(WireError::Truncated {
                have: 2,
                need: MAX_FRAME_WORDS + 1,
            }),
            "one under the cap is a valid header, just unsatisfied"
        );
        // u64::MAX would wrap `len + 2`; the overflow check must fire
        // first, for any frame length.
        assert_eq!(
            decode_frame(&[u64::MAX, 0, 1, 2, 3]),
            Err(WireError::LengthOverflow { len: u64::MAX })
        );
    }

    /// Zero-length payloads: a frame of exactly two words (header only)
    /// round-trips, one word is truncated, and the empty payload still
    /// bills one word through `Wire::words`.
    #[test]
    fn zero_length_payload_edges() {
        let frame = encode_frame(&[]);
        assert_eq!(frame.len(), 2, "empty payload is a bare header");
        assert_eq!(decode_frame(&frame), Ok(vec![]));
        assert_eq!(
            decode_frame(&frame[..1]),
            Err(WireError::Truncated { have: 1, need: 2 })
        );
        // Model accounting: even an empty message occupies one word slot.
        assert_eq!(Vec::<u64>::new().words(), 1);
        assert_eq!(encode_frame(&[]).words(), 2, "header words are real words");
    }

    /// Messages exactly at word boundaries: `words()` sums element sizes
    /// with no rounding, so mixed-width payloads bill exactly.
    #[test]
    fn word_boundary_accounting_is_exact() {
        assert_eq!(vec![(1u64, 2u64); 3].words(), 6);
        let nested: Vec<Vec<u64>> = vec![vec![], vec![1], vec![1, 2]];
        assert_eq!(
            nested.words(),
            1 + 1 + 2,
            "empty inner vec floors at 1, others bill exactly"
        );
        // A single-bit flip in a one-word frame's payload is caught.
        let mut frame = encode_frame(&[0]);
        frame[2] ^= 1 << 63;
        assert!(matches!(
            decode_frame(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn arc_wire_delegates_words() {
        use std::sync::Arc;
        assert_eq!(Arc::new(vec![1u64, 2, 3]).words(), 3);
        assert_eq!(Arc::new(()).words(), 1);
        assert_eq!(Arc::new(7u64).words(), 1);
    }

    /// Copy-on-write corruption: flipping a bit of one shared handle must
    /// detach a private copy, leaving the other handle untouched.
    #[test]
    fn arc_corrupt_bit_is_copy_on_write() {
        use std::sync::Arc;
        let original = Arc::new(vec![0u64, 0]);
        let mut flipped = Arc::clone(&original);
        assert!(flipped.corrupt_bit(3));
        assert_eq!(*original, vec![0, 0], "shared peer must not see the flip");
        assert_eq!(*flipped, vec![8, 0]);
        assert!(
            !Arc::ptr_eq(&original, &flipped),
            "the flip detaches a private copy"
        );

        // Uniquely owned: flipped in place, no detach possible or needed.
        let mut unique = Arc::new(1u64);
        assert!(unique.corrupt_bit(0));
        assert_eq!(*unique, 0);
    }

    /// Unflippable payloads stay unflippable through an `Arc`: the chaos
    /// layer's degrade-to-drop contract must survive the wrapper.
    #[test]
    fn arc_of_unflippable_payload_reports_false() {
        use std::sync::Arc;
        let mut a = Arc::new(());
        assert!(!a.corrupt_bit(9));
        let mut b: Arc<Vec<u64>> = Arc::new(Vec::new());
        assert!(!b.corrupt_bit(9));
    }

    #[test]
    fn wire_error_displays_are_informative() {
        let cases = [
            WireError::Truncated { have: 1, need: 5 },
            WireError::TrailingWords { have: 9, need: 5 },
            WireError::LengthOverflow { len: u64::MAX },
            WireError::ChecksumMismatch {
                expected: 1,
                found: 2,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn frame_codec_round_trips(payload in proptest::collection::vec(any::<u64>(), 0..32)) {
            let frame = encode_frame(&payload);
            prop_assert_eq!(decode_frame(&frame), Ok(payload));
        }

        #[test]
        fn any_single_bit_flip_is_detected_not_panicking(
            payload in proptest::collection::vec(any::<u64>(), 0..32),
            word_pick in any::<u64>(),
            bit in 0u64..64,
        ) {
            let mut frame = encode_frame(&payload);
            let idx = (word_pick % frame.len() as u64) as usize;
            frame[idx] ^= 1u64 << bit;
            prop_assert!(
                decode_frame(&frame).is_err(),
                "flip of bit {} in word {} went undetected",
                bit,
                idx
            );
        }

        #[test]
        fn corrupt_bit_changes_vec_payloads(
            payload in proptest::collection::vec(any::<u64>(), 1..16),
            bit in any::<u64>(),
        ) {
            let mut corrupted = payload.clone();
            prop_assert!(corrupted.corrupt_bit(bit));
            prop_assert_ne!(corrupted, payload);
        }
    }
}

//! Message-size accounting.
//!
//! Every message type an algorithm sends through the simulator must say how
//! many `⌈log₂ n⌉`-bit words it occupies. The simulator charges this size
//! against the per-link budget and the global word/bit counters; algorithms
//! therefore cannot "cheat" by stuffing large payloads into one message.

/// Types that can cross a clique link.
pub trait Wire {
    /// Size in words (1 word = `⌈log₂ n⌉` bits). Must be ≥ 1: even an empty
    /// signal occupies one message slot of the model.
    fn words(&self) -> u64;
}

impl Wire for u64 {
    fn words(&self) -> u64 {
        1
    }
}

impl Wire for u32 {
    fn words(&self) -> u64 {
        1
    }
}

impl Wire for usize {
    fn words(&self) -> u64 {
        1
    }
}

impl Wire for () {
    fn words(&self) -> u64 {
        1
    }
}

impl Wire for (u64, u64) {
    fn words(&self) -> u64 {
        2
    }
}

impl Wire for (u64, u64, u64) {
    fn words(&self) -> u64 {
        3
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn words(&self) -> u64 {
        self.iter().map(Wire::words).sum::<u64>().max(1)
    }
}

impl<T: Wire + ?Sized> Wire for &T {
    fn words(&self) -> u64 {
        (**self).words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!(5u32.words(), 1);
        assert_eq!(5usize.words(), 1);
        assert_eq!(().words(), 1);
        assert_eq!((1u64, 2u64).words(), 2);
        assert_eq!((1u64, 2u64, 3u64).words(), 3);
    }

    #[test]
    fn vec_sums_and_floors_at_one() {
        assert_eq!(vec![1u64, 2, 3].words(), 3);
        assert_eq!(
            Vec::<u64>::new().words(),
            1,
            "empty payload still occupies a slot"
        );
    }

    #[test]
    fn reference_delegates() {
        let v = vec![(1u64, 2u64); 4];
        assert_eq!(v.words(), 8);
    }
}

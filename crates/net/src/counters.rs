//! Cost metering: the two complexity measures the paper studies.
//!
//! *Time complexity* is the number of synchronous rounds; *message
//! complexity* is the total number of messages (each of `O(log n)` bits)
//! sent by all machines. The simulator additionally tracks words and bits so
//! that bandwidth ablations (Theorems 4/7 "furthermore") stay honest, and it
//! supports named scopes so experiments can attribute cost to algorithm
//! phases ("Phase 1: Lotker preprocessing" vs "Phase 2: sketching").

use std::fmt;

/// A cost snapshot/delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Synchronous rounds elapsed.
    pub rounds: u64,
    /// Messages sent (the paper's message complexity).
    pub messages: u64,
    /// Words sent (1 word = `⌈log₂ n⌉` bits).
    pub words: u64,
    /// Bits sent (`words × word_bits`).
    pub bits: u64,
}

impl Cost {
    /// Component-wise difference `self − earlier`, saturating at zero.
    ///
    /// The saturating behaviour is uniform across debug and release
    /// builds (this used to panic in debug and wrap in release). Cost
    /// counters are monotone, so a deficit can only arise from comparing
    /// snapshots of *different* networks or passing the arguments in the
    /// wrong order; use [`Cost::checked_since`] to detect that instead of
    /// silently clamping.
    pub fn since(&self, earlier: &Cost) -> Cost {
        Cost {
            rounds: self.rounds.saturating_sub(earlier.rounds),
            messages: self.messages.saturating_sub(earlier.messages),
            words: self.words.saturating_sub(earlier.words),
            bits: self.bits.saturating_sub(earlier.bits),
        }
    }

    /// Component-wise difference `self − earlier`, or `None` if `earlier`
    /// exceeds `self` in any component (i.e. the snapshots are not an
    /// ordered pair from one monotone counter).
    pub fn checked_since(&self, earlier: &Cost) -> Option<Cost> {
        Some(Cost {
            rounds: self.rounds.checked_sub(earlier.rounds)?,
            messages: self.messages.checked_sub(earlier.messages)?,
            words: self.words.checked_sub(earlier.words)?,
            bits: self.bits.checked_sub(earlier.bits)?,
        })
    }

    /// Conversion to the tracing layer's mirror struct.
    pub fn snapshot(&self) -> cc_trace::CostSnapshot {
        cc_trace::CostSnapshot {
            rounds: self.rounds,
            messages: self.messages,
            words: self.words,
            bits: self.bits,
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            rounds: self.rounds + rhs.rounds,
            messages: self.messages + rhs.messages,
            words: self.words + rhs.words,
            bits: self.bits + rhs.bits,
        }
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} messages={} words={} bits={}",
            self.rounds, self.messages, self.words, self.bits
        )
    }
}

/// Running counters plus named scopes.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    total: Cost,
    open: Vec<(String, Cost)>,
    closed: Vec<(String, Cost)>,
}

impl Counters {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current totals.
    pub fn total(&self) -> Cost {
        self.total
    }

    /// Records one completed round.
    pub fn add_round(&mut self) {
        self.total.rounds += 1;
    }

    /// Records `r` rounds at once (fast-forward).
    pub fn add_rounds(&mut self, r: u64) {
        self.total.rounds += r;
    }

    /// Records one message of `words` words (`word_bits` bits each).
    pub fn add_message(&mut self, words: u64, word_bits: u64) {
        self.total.messages += 1;
        self.total.words += words;
        self.total.bits += words * word_bits;
    }

    /// Merges a pre-aggregated cost delta.
    ///
    /// Sharded drivers (the parallel backend in `cc-runtime`) meter each
    /// worker into its own `Counters` and fold the shards in here at the
    /// round barrier; addition is commutative, so totals stay exact
    /// regardless of thread scheduling.
    pub fn merge(&mut self, delta: Cost) {
        self.total += delta;
    }

    /// Opens a named scope; costs accrued until the matching
    /// [`end_scope`](Self::end_scope) are attributed to it.
    pub fn begin_scope(&mut self, name: impl Into<String>) {
        self.open.push((name.into(), self.total));
    }

    /// Closes the innermost scope and records its delta.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn end_scope(&mut self) -> Cost {
        let (name, start) = self.open.pop().expect("no open scope");
        let delta = self.total.since(&start);
        self.closed.push((name, delta));
        delta
    }

    /// Completed scopes in closing order.
    pub fn scopes(&self) -> &[(String, Cost)] {
        &self.closed
    }

    /// Delta of the first completed scope with this name, if any.
    pub fn scope(&self, name: &str) -> Option<Cost> {
        self.closed.iter().find(|(n, _)| n == name).map(|&(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut c = Counters::new();
        c.add_round();
        c.add_message(3, 10);
        c.add_message(1, 10);
        let t = c.total();
        assert_eq!(t.rounds, 1);
        assert_eq!(t.messages, 2);
        assert_eq!(t.words, 4);
        assert_eq!(t.bits, 40);
    }

    #[test]
    fn scopes_capture_deltas() {
        let mut c = Counters::new();
        c.add_round();
        c.begin_scope("phase1");
        c.add_round();
        c.add_message(2, 8);
        let d = c.end_scope();
        assert_eq!(d.rounds, 1);
        assert_eq!(d.messages, 1);
        assert_eq!(d.words, 2);
        assert_eq!(c.scope("phase1"), Some(d));
        assert_eq!(c.scope("missing"), None);
        assert_eq!(c.total().rounds, 2);
    }

    #[test]
    fn nested_scopes() {
        let mut c = Counters::new();
        c.begin_scope("outer");
        c.add_round();
        c.begin_scope("inner");
        c.add_round();
        c.end_scope();
        c.add_round();
        let outer = c.end_scope();
        assert_eq!(c.scope("inner").unwrap().rounds, 1);
        assert_eq!(outer.rounds, 3);
    }

    #[test]
    #[should_panic(expected = "no open scope")]
    fn unbalanced_end_panics() {
        Counters::new().end_scope();
    }

    #[test]
    fn since_subtracts() {
        let a = Cost {
            rounds: 5,
            messages: 10,
            words: 20,
            bits: 200,
        };
        let b = Cost {
            rounds: 2,
            messages: 4,
            words: 8,
            bits: 80,
        };
        let d = a.since(&b);
        assert_eq!(d.rounds, 3);
        assert_eq!(d.messages, 6);
        assert_eq!(a.checked_since(&b), Some(d));
    }

    #[test]
    fn since_saturates_uniformly_on_underflow() {
        let small = Cost {
            rounds: 1,
            messages: 2,
            words: 3,
            bits: 4,
        };
        let big = Cost {
            rounds: 10,
            messages: 1, // messages is NOT in deficit
            words: 30,
            bits: 40,
        };
        // Arguments reversed: saturate to zero, never wrap, in every build.
        let d = small.since(&big);
        assert_eq!(d.rounds, 0);
        assert_eq!(d.messages, 1);
        assert_eq!(d.words, 0);
        assert_eq!(d.bits, 0);
        // The checked variant surfaces the mistake instead.
        assert_eq!(small.checked_since(&big), None);
        assert_eq!(big.checked_since(&small), None, "messages deficit");
    }

    #[test]
    fn add_sums_componentwise() {
        let a = Cost {
            rounds: 1,
            messages: 2,
            words: 3,
            bits: 30,
        };
        let b = Cost {
            rounds: 10,
            messages: 20,
            words: 30,
            bits: 300,
        };
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!(c.rounds, 11);
        assert_eq!(c.bits, 330);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Cost::default().to_string().is_empty());
    }

    #[test]
    fn fast_forward_rounds() {
        let mut c = Counters::new();
        c.add_rounds(1_000_000_007);
        assert_eq!(c.total().rounds, 1_000_000_007);
        assert_eq!(c.total().messages, 0);
    }
}

//! The Lotker et al. `O(log log n)`-round Congested Clique MST algorithm
//! (SICOMP 2005), which Hegeman et al. (PODC 2015) use as the Phase-1
//! preprocessing of their `O(log log log n)` connectivity and MST
//! algorithms (Theorem 2 of the paper states its guarantees).
//!
//! * [`merge`] — the coordinator's capped ("controlled") Borůvka merge and
//!   why it only ever adds MST edges while squaring fragment sizes.
//! * [`run`] — the distributed phase protocol: candidate collection in a
//!   constant number of rounds, the routed hand-off to the coordinator,
//!   and the broadcast of merge decisions.
//!
//! Running [`cc_mst`] to completion computes the MST of a weighted clique
//! in `O(log log n)` phases of `O(1)` rounds each; running it for
//! `⌈log log log n⌉ + 3` phases ([`reduce_components_phases`]) yields
//! fragments of size `≥ log⁴ n` — the component reduction of Lemma 3.
//!
//! # Example
//!
//! ```
//! use cc_lotker::cc_mst;
//! use cc_graph::{generators, mst};
//! use cc_net::NetConfig;
//! use cc_route::Net;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let g = generators::complete_wgraph(16, &mut rng);
//! let mut net = Net::new(NetConfig::kt1(16));
//! let run = cc_mst(&mut net, &g, None).unwrap();
//! assert_eq!(run.forest, mst::kruskal(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merge;
pub mod run;

pub use merge::{controlled_boruvka, Candidate, MergeOutcome};
pub use run::{cc_mst, min_fragment_size_before_phase, reduce_components_phases, CcMstRun};

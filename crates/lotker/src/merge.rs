//! The coordinator's controlled Borůvka merge.
//!
//! In each Lotker phase the coordinator `v*` receives, for every fragment,
//! its `s` lightest minimum-weight edges to *distinct* other fragments
//! (its "candidate list", `s` = the current guaranteed minimum fragment
//! size). It then merges fragments along minimum outgoing candidates,
//! **freezing** any merged super-fragment that exceeds `s` member
//! fragments.
//!
//! Why this is safe and sufficient (the heart of Lotker et al.'s analysis):
//!
//! * *Safety*: while a super-fragment `S` has at most `s` member fragments,
//!   the minimum outgoing candidate of `S` equals its true minimum-weight
//!   outgoing edge. If the true minimum `e` left member `F` but were
//!   missing from `F`'s list, the list would hold `s` per-fragment minima
//!   all lighter than `e`; at most `|S| − 1 ≤ s − 1` of them lead inside
//!   `S`, so one leads outside and is lighter than `e` — contradiction.
//!   Merging along true minimum outgoing edges is a Borůvka step, so every
//!   chosen edge is an MST edge (weights are tie-broken distinct).
//! * *Growth*: the input graph is a (weighted) clique, so the fragment
//!   graph is complete; an unfrozen component always finds an outgoing
//!   candidate unless it already spans all fragments. Hence every
//!   component ends frozen (> `s` member fragments, each of ≥ `s` nodes,
//!   so the new minimum fragment size is > `s²`) or complete — which is
//!   exactly the `2^{2^{k−1}}` growth of Theorem 2(i).

use cc_graph::{UnionFind, WEdge, Weight};
use std::collections::HashMap;

/// A candidate edge as shipped to the coordinator: tie-broken weight plus
/// the fragment the far endpoint belongs to.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The edge (carries its own tie-broken weight).
    pub edge: WEdge,
    /// Raw weight may be `INFINITE_W` (a clique link that is not a real
    /// input edge — REDUCECOMPONENTS filters these afterwards).
    pub far_fragment: usize,
}

/// Result of one controlled merge.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// `old fragment leader → new fragment leader` (minimum member ID).
    pub relabel: HashMap<usize, usize>,
    /// Edges chosen this phase (all MST edges of the weighted clique).
    pub chosen: Vec<WEdge>,
}

/// Runs the controlled Borůvka merge.
///
/// * `leaders` — current fragment leaders (minimum node ID per fragment).
/// * `candidates[i]` — fragment `leaders[i]`'s candidate list (the `s`
///   lightest min-weight edges to distinct fragments; complete if the
///   fragment has fewer than `s` neighbors).
/// * `cap` — freeze threshold `s` (≥ 1).
///
/// # Panics
///
/// Panics if `cap == 0` or a candidate references an unknown fragment.
pub fn controlled_boruvka(
    leaders: &[usize],
    candidates: &[Vec<Candidate>],
    cap: usize,
) -> MergeOutcome {
    assert!(cap >= 1, "freeze threshold must be positive");
    assert_eq!(
        leaders.len(),
        candidates.len(),
        "one candidate list per fragment"
    );
    let m = leaders.len();
    let index_of: HashMap<usize, usize> =
        leaders.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let mut uf = UnionFind::new(m);
    let mut members: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();
    let mut frozen = vec![false; m];
    let mut chosen: Vec<WEdge> = Vec::new();

    loop {
        // Snapshot phase: best outgoing candidate per active component.
        let mut best: HashMap<usize, (Weight, WEdge, usize)> = HashMap::new();
        for root in 0..m {
            if uf.find(root) != root || frozen[root] || members[root].len() > cap {
                continue;
            }
            let mut comp_best: Option<(Weight, WEdge, usize)> = None;
            for &fi in &members[root] {
                for c in &candidates[fi] {
                    if c.edge.w == cc_graph::weight::INFINITE_W {
                        // Never merge along ∞ (non-input) links: a
                        // component whose true minimum outgoing edge is ∞
                        // already spans its finite connected component —
                        // it is *finished* in Algorithm 1's sense. This
                        // keeps every chosen edge real, so discarding ∞
                        // edges (Algorithm 1 step 3) can never fragment an
                        // unfinished tree — the invariant Lemma 3 needs.
                        continue;
                    }
                    let far = *index_of
                        .get(&c.far_fragment)
                        .expect("candidate references unknown fragment");
                    if uf.find(far) == root {
                        continue; // internal by now
                    }
                    let w = c.edge.weight();
                    if comp_best.is_none_or(|(bw, _, _)| w < bw) {
                        comp_best = Some((w, c.edge, far));
                    }
                }
            }
            if let Some(b) = comp_best {
                best.insert(root, b);
            }
        }
        if best.is_empty() {
            break;
        }
        // Apply phase.
        let mut progressed = false;
        for (root, (_w, edge, far)) in best {
            let (a, b) = (uf.find(root), uf.find(far));
            if a == b {
                continue;
            }
            uf.union(a, b);
            let new_root = uf.find(a);
            let (lo, hi) = if new_root == a { (a, b) } else { (b, a) };
            let moved = std::mem::take(&mut members[hi]);
            members[lo].extend(moved);
            frozen[lo] = frozen[lo] || frozen[hi] || members[lo].len() > cap;
            chosen.push(edge);
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    // New leader per old fragment: minimum leader ID in its component
    // (fragment leaders are component minima, so the min leader is the
    // min node of the merged component).
    let mut min_leader: HashMap<usize, usize> = HashMap::new();
    for (i, &leader) in leaders.iter().enumerate() {
        let r = uf.find(i);
        let e = min_leader.entry(r).or_insert(usize::MAX);
        *e = (*e).min(leader);
    }
    let relabel: HashMap<usize, usize> = (0..m)
        .map(|i| (leaders[i], min_leader[&uf.find(i)]))
        .collect();
    chosen.sort();
    chosen.dedup();
    MergeOutcome { relabel, chosen }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(u: usize, v: usize, w: u64, far: usize) -> Candidate {
        Candidate {
            edge: WEdge::new(u, v, w),
            far_fragment: far,
        }
    }

    #[test]
    fn two_fragments_merge_along_min() {
        let leaders = vec![0, 1];
        let candidates = vec![vec![cand(0, 1, 5, 1)], vec![cand(0, 1, 5, 0)]];
        let out = controlled_boruvka(&leaders, &candidates, 1);
        assert_eq!(out.chosen, vec![WEdge::new(0, 1, 5)]);
        assert_eq!(out.relabel[&0], 0);
        assert_eq!(out.relabel[&1], 0);
    }

    #[test]
    fn chain_merges_fully_with_large_cap() {
        // Fragments 0-1-2-3 in a path of candidate minima.
        let leaders = vec![0, 1, 2, 3];
        let candidates = vec![
            vec![cand(0, 1, 1, 1)],
            vec![cand(0, 1, 1, 0), cand(1, 2, 2, 2)],
            vec![cand(1, 2, 2, 1), cand(2, 3, 3, 3)],
            vec![cand(2, 3, 3, 2)],
        ];
        let out = controlled_boruvka(&leaders, &candidates, 10);
        assert_eq!(out.chosen.len(), 3);
        assert!(out.relabel.values().all(|&l| l == 0));
    }

    #[test]
    fn freeze_cap_limits_growth_but_all_merge_at_least_once() {
        // 4 singleton fragments on a complete candidate structure, cap 1:
        // every component freezes after one merge (2 members > cap).
        let leaders = vec![0, 1, 2, 3];
        let candidates = vec![
            vec![cand(0, 1, 1, 1)],
            vec![cand(0, 1, 1, 0)],
            vec![cand(2, 3, 2, 3)],
            vec![cand(2, 3, 2, 2)],
        ];
        let out = controlled_boruvka(&leaders, &candidates, 1);
        assert_eq!(out.chosen.len(), 2);
        // Components {0,1} and {2,3}: every fragment merged with ≥ 1 other.
        assert_eq!(out.relabel[&1], 0);
        assert_eq!(out.relabel[&3], 2);
        assert_ne!(out.relabel[&0], out.relabel[&2]);
    }

    #[test]
    fn chosen_edges_are_mst_edges_of_fragment_graph() {
        // Fragment graph = triangle with weights 1, 2, 3: MST is {1, 2}.
        let leaders = vec![0, 1, 2];
        let candidates = vec![
            vec![cand(0, 1, 1, 1), cand(0, 2, 3, 2)],
            vec![cand(0, 1, 1, 0), cand(1, 2, 2, 2)],
            vec![cand(1, 2, 2, 1), cand(0, 2, 3, 0)],
        ];
        let out = controlled_boruvka(&leaders, &candidates, 5);
        assert_eq!(out.chosen, vec![WEdge::new(0, 1, 1), WEdge::new(1, 2, 2)]);
    }

    #[test]
    fn no_candidates_no_merges() {
        let leaders = vec![4, 9];
        let candidates = vec![Vec::new(), Vec::new()];
        let out = controlled_boruvka(&leaders, &candidates, 3);
        assert!(out.chosen.is_empty());
        assert_eq!(out.relabel[&4], 4);
        assert_eq!(out.relabel[&9], 9);
    }

    #[test]
    fn duplicate_choice_of_same_edge_not_double_counted() {
        let leaders = vec![3, 7];
        let candidates = vec![vec![cand(3, 7, 2, 7)], vec![cand(3, 7, 2, 3)]];
        let out = controlled_boruvka(&leaders, &candidates, 2);
        assert_eq!(out.chosen.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown fragment")]
    fn unknown_far_fragment_rejected() {
        let leaders = vec![0];
        let candidates = vec![vec![cand(0, 1, 1, 99)]];
        controlled_boruvka(&leaders, &candidates, 1);
    }
}

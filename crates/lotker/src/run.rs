//! The distributed CC-MST driver (Lotker et al., Theorem 2).
//!
//! The algorithm runs in phases of a constant number of rounds each. At the
//! start of phase `k` the node set is partitioned into fragments of size at
//! least `s = 2^{2^{k-2}}` and every node knows the partition and the tree
//! edges chosen so far. One phase:
//!
//! 1. **Share** — all-to-all broadcast of fragment labels (1 round,
//!    `n(n−1)` messages; keeps "every node knows `F_k`" literal).
//! 2. **Candidates up** — every node sends, for each other fragment `F'`,
//!    its lightest edge into `F'` to `F'`'s leader (≤ `m − 1` messages per
//!    node to distinct receivers → 1 round). Clique links that are not
//!    input edges count with weight `∞`, exactly as Algorithm 1 builds its
//!    weighted clique.
//! 3. **Leader exchange** — each leader now knows, per fragment `F`, the
//!    minimum-weight edge `F → F'`; it returns that value to `F`'s leader
//!    (≤ `m` messages to distinct receivers → 1 round). Each leader ends
//!    with its fragment's full minimum-edge row.
//! 4. **Candidates to coordinator** — each leader selects its `s` lightest
//!    candidates (to distinct fragments) and routes them to the
//!    coordinator `v* = 0`; `m·s ≤ n` packets, within the routing
//!    contract.
//! 5. **Controlled merge** — `v*` runs the capped Borůvka of
//!    [`merge`](crate::merge) locally.
//! 6. **Broadcast down** — `v*` broadcasts the relabeling and the chosen
//!    edges (≤ `O(n)` words) with the distribute-and-rebroadcast
//!    collective; every node updates its fragment table and forest copy.

use crate::merge::{controlled_boruvka, Candidate};
use cc_graph::{WEdge, WGraph};
use cc_net::NetError;
use cc_route::{all_to_all_share, broadcast_large, route, Net, Packet, RoutedPacket};

/// Result of running CC-MST for some number of phases.
#[derive(Clone, Debug)]
pub struct CcMstRun {
    /// Fragment leader (minimum member ID) of every node.
    pub fragment_of: Vec<usize>,
    /// All tree edges chosen so far — always *real* input edges: the merge
    /// never selects `∞` closure links (a component whose minimum outgoing
    /// edge is `∞` already spans its finite connected component), so
    /// Algorithm 1 step 3's "discard ∞ edges" is a no-op by construction
    /// and unfinished trees can never be fragmented by it (Lemma 3).
    pub forest: Vec<WEdge>,
    /// Phases actually executed (may stop early once no merges remain).
    pub phases_run: usize,
    /// Whether no further merges are possible: every fragment spans a
    /// connected component of the input (one fragment total iff the input
    /// is connected).
    pub finished: bool,
}

/// Guaranteed minimum fragment size entering phase `k` (1-based):
/// `s_0 = 1`, `s_k = s_{k-1}²` — i.e. `2^{2^{k-2}}`, saturating at `n`.
pub fn min_fragment_size_before_phase(k: usize, n: usize) -> usize {
    let mut s = 1usize;
    for _ in 1..k {
        // A phase leaves components of > s fragments, each of ≥ s nodes:
        // new size ≥ s(s+1) ≥ max(s + 1, s²).
        s = s.saturating_mul(s).max(s + 1).min(n.max(1));
        if s >= n {
            break;
        }
    }
    s.min(n.max(1))
}

/// `⌈log log log n⌉ + 3`, the phase count Algorithm 1 (REDUCECOMPONENTS)
/// runs CC-MST for.
pub fn reduce_components_phases(n: usize) -> usize {
    let lg = |x: f64| x.log2();
    let mut v = lg(lg(lg(n.max(4) as f64).max(1.0)).max(1.0));
    if v < 0.0 {
        v = 0.0;
    }
    v.ceil() as usize + 3
}

/// Runs CC-MST on the weighted-clique closure of `g` (absent clique links
/// weigh `∞`) for at most `phases` phases (`None` = to completion).
///
/// Requires `g.n() == net.n()`.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the graph and network sizes disagree.
pub fn cc_mst(net: &mut Net, g: &WGraph, phases: Option<usize>) -> Result<CcMstRun, NetError> {
    let n = net.n();
    assert_eq!(g.n(), n, "graph must span the clique");
    let coordinator = 0usize;
    let mut frag_of: Vec<usize> = (0..n).collect();
    let mut forest: Vec<WEdge> = Vec::new();
    let max_phases = phases.unwrap_or(usize::MAX);
    let mut phases_run = 0usize;
    let mut finished = false;

    while phases_run < max_phases && !finished {
        let k = phases_run + 1;
        let cap = min_fragment_size_before_phase(k, n);
        net.begin_scope(format!("lotker-phase-{k}"));

        // ---- Step 1: share fragment labels (cost parity; the table is
        // already replicated knowledge).
        let labels: Vec<u64> = frag_of.iter().map(|&l| l as u64).collect();
        all_to_all_share(net, &labels)?;

        let mut leaders: Vec<usize> = frag_of.clone();
        leaders.sort_unstable();
        leaders.dedup();
        if leaders.len() == 1 {
            net.end_scope();
            finished = true;
            break;
        }

        // Dense fragment index shared by steps 2, 3, and 5: fragment labels
        // are leader node IDs, so an `n`-sized table maps label → compact
        // index in `leaders`. The per-node/per-leader minimum reductions
        // below run over epoch-stamped dense arrays instead of hash maps —
        // the sent message multiset is unchanged (minima under the total
        // `Weight` order are unique, so reduction order is irrelevant), only
        // the local compute is cheaper.
        let m = leaders.len();
        let mut frag_idx: Vec<u32> = vec![u32::MAX; n];
        for (j, &l) in leaders.iter().enumerate() {
            frag_idx[l] = j as u32;
        }
        let mut best: Vec<WEdge> = vec![WEdge::new(0, 1, 0); m];
        let mut mark: Vec<u32> = vec![0; m];
        let mut epoch: u32 = 0;

        // ---- Step 2: every node sends its lightest edge into each other
        // fragment to that fragment's leader. Fragments with no real edge
        // from `v` get the clique-closure link `(v, leader')` of weight ∞.
        let mut inbound: Vec<Vec<WEdge>> = vec![Vec::new(); n];
        net.step(|v, _inbox, out| {
            epoch += 1;
            let fv = frag_of[v];
            for &(u, w) in g.neighbors(v) {
                let fu = frag_of[u as usize];
                if fu == fv {
                    continue;
                }
                let j = frag_idx[fu] as usize;
                let e = WEdge::new(v, u as usize, w);
                if mark[j] != epoch {
                    mark[j] = epoch;
                    best[j] = e;
                } else if e.weight() < best[j].weight() {
                    best[j] = e;
                }
            }
            for (j, &l) in leaders.iter().enumerate() {
                if l == fv {
                    continue;
                }
                let e = if mark[j] == epoch {
                    best[j]
                } else {
                    WEdge::new(v, l, cc_graph::weight::INFINITE_W)
                };
                let _ = out.send(l, Packet::of(&[e.w, e.u as u64, e.v as u64]));
            }
        })?;
        net.step(|node, inbox, _out| {
            for env in inbox {
                inbound[node].push(WEdge::new(
                    env.msg[1] as usize,
                    env.msg[2] as usize,
                    env.msg[0],
                ));
            }
        })?;

        // ---- Step 3: leader of F' reduces per source fragment and returns
        // the row entries to each source fragment's leader.
        // reduce: (source fragment, this fragment) -> min edge.
        let mut rows: Vec<Vec<WEdge>> = vec![Vec::new(); n]; // candidate row per leader
        net.step(|node, _inbox, out| {
            if frag_idx[node] == u32::MAX {
                return; // not a leader this phase
            }
            epoch += 1;
            for e in &inbound[node] {
                // The endpoint inside the *sender's* fragment is the one not
                // in this leader's fragment.
                let (u, v) = e.endpoints();
                let src_frag = if frag_of[u] == node {
                    frag_of[v]
                } else {
                    frag_of[u]
                };
                let j = frag_idx[src_frag] as usize;
                if mark[j] != epoch {
                    mark[j] = epoch;
                    best[j] = *e;
                } else if e.weight() < best[j].weight() {
                    best[j] = *e;
                }
            }
            for (j, &dst) in leaders.iter().enumerate() {
                if mark[j] == epoch {
                    let e = best[j];
                    let _ = out.send(dst, Packet::of(&[e.w, e.u as u64, e.v as u64]));
                }
            }
        })?;
        net.step(|node, inbox, _out| {
            for env in inbox {
                rows[node].push(WEdge::new(
                    env.msg[1] as usize,
                    env.msg[2] as usize,
                    env.msg[0],
                ));
            }
        })?;

        // ---- Step 4: each leader keeps its `cap` lightest row entries and
        // routes them to the coordinator.
        let mut packets = Vec::new();
        for &l in &leaders {
            rows[l].sort();
            for e in rows[l].iter().take(cap) {
                packets.push(RoutedPacket {
                    src: l,
                    dst: coordinator,
                    payload: Packet::of(&[e.w, e.u as u64, e.v as u64]),
                });
            }
        }
        let delivered = route(net, packets)?;

        // ---- Step 5: coordinator merges locally.
        let mut cand_lists: Vec<Vec<Candidate>> = vec![Vec::new(); leaders.len()];
        for (src, payload) in &delivered[coordinator] {
            let e = WEdge::new(payload[1] as usize, payload[2] as usize, payload[0]);
            let (u, v) = e.endpoints();
            let src_frag = *src; // sender leader == its fragment label
            let far = if frag_of[u] == src_frag {
                frag_of[v]
            } else {
                frag_of[u]
            };
            cand_lists[frag_idx[src_frag] as usize].push(Candidate {
                edge: e,
                far_fragment: far,
            });
        }
        let outcome = controlled_boruvka(&leaders, &cand_lists, cap);

        // ---- Step 6: broadcast relabeling + chosen edges; everyone
        // updates its replicated state.
        let mut words: Vec<u64> = Vec::new();
        words.push(leaders.len() as u64);
        for &l in &leaders {
            words.push(outcome.relabel[&l] as u64);
        }
        words.push(outcome.chosen.len() as u64);
        for e in &outcome.chosen {
            words.extend_from_slice(&[e.w, e.u as u64, e.v as u64]);
        }
        broadcast_large(net, coordinator, words.into())?;

        let merged_any = !outcome.chosen.is_empty();
        for f in frag_of.iter_mut() {
            *f = outcome.relabel[&*f];
        }
        forest.extend(outcome.chosen.iter().copied());
        net.end_scope();
        phases_run += 1;
        if !merged_any {
            finished = true;
        }
        let mut remaining = frag_of.clone();
        remaining.sort_unstable();
        remaining.dedup();
        if remaining.len() == 1 {
            finished = true;
        }
    }

    forest.sort();
    forest.dedup();
    Ok(CcMstRun {
        fragment_of: frag_of,
        forest,
        phases_run,
        finished,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, mst};
    use cc_net::NetConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;

    fn net(n: usize, seed: u64) -> Net {
        Net::new(NetConfig::kt1(n).with_seed(seed))
    }

    #[test]
    fn size_schedule() {
        assert_eq!(min_fragment_size_before_phase(1, 1024), 1);
        assert_eq!(min_fragment_size_before_phase(2, 1024), 2);
        assert_eq!(min_fragment_size_before_phase(3, 1024), 4);
        assert_eq!(min_fragment_size_before_phase(4, 1024), 16);
        assert_eq!(min_fragment_size_before_phase(5, 1024), 256);
        assert_eq!(
            min_fragment_size_before_phase(6, 1024),
            1024,
            "saturates at n"
        );
    }

    #[test]
    fn reduce_phase_counts_are_tiny() {
        assert_eq!(reduce_components_phases(1024), 5);
        assert!(reduce_components_phases(1 << 20) <= 6);
        assert!(reduce_components_phases(16) >= 3);
    }

    #[test]
    fn full_run_matches_kruskal_on_cliques() {
        for seed in 0..3 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::complete_wgraph(24, &mut rng);
            let mut nt = net(24, seed);
            let run = cc_mst(&mut nt, &g, None).unwrap();
            assert!(run.finished);
            assert_eq!(run.forest, mst::kruskal(&g), "seed={seed}");
            assert!(run.fragment_of.iter().all(|&l| l == 0));
        }
    }

    #[test]
    fn sparse_graph_clique_closure_never_bridges_with_infinity() {
        // Two far-apart components: the merge refuses ∞ closure links, so
        // the run finishes with one fragment per input component and the
        // forest equals the true minimum spanning forest.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = generators::random_connected_wgraph(8, 0.4, 50, &mut rng);
        let mut g = cc_graph::WGraph::new(16);
        for e in a.edges() {
            g.add_edge(e.u as usize, e.v as usize, e.w);
        }
        let b = generators::random_connected_wgraph(8, 0.4, 50, &mut rng);
        for e in b.edges() {
            g.add_edge(8 + e.u as usize, 8 + e.v as usize, e.w);
        }
        let mut nt = net(16, 1);
        let run = cc_mst(&mut nt, &g, None).unwrap();
        assert!(run.finished);
        assert!(
            run.forest
                .iter()
                .all(|e| e.w != cc_graph::weight::INFINITE_W),
            "no ∞ edge may ever be chosen"
        );
        assert_eq!(run.forest, mst::kruskal(&g), "forest is the true MSF");
        let mut frags = run.fragment_of.clone();
        frags.sort_unstable();
        frags.dedup();
        assert_eq!(frags, vec![0, 8], "one fragment per input component");
    }

    #[test]
    fn phase_limited_run_grows_fragments_per_schedule() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::complete_wgraph(32, &mut rng);
        for k in 1..=3usize {
            let mut nt = net(32, 7);
            let run = cc_mst(&mut nt, &g, Some(k)).unwrap();
            // Growth is a lower bound: the run may converge early.
            assert!(run.phases_run <= k);
            assert!(run.phases_run == k || run.finished);
            // Fragment sizes ≥ schedule bound (or a single fragment).
            let mut sizes: HashMap<usize, usize> = HashMap::new();
            for &l in &run.fragment_of {
                *sizes.entry(l).or_default() += 1;
            }
            let bound = min_fragment_size_before_phase(k + 1, 32);
            if sizes.len() > 1 {
                for (&l, &s) in &sizes {
                    assert!(s >= bound, "phase {k}: fragment {l} has size {s} < {bound}");
                }
            }
            // All chosen finite edges are MST edges.
            let mst_set: std::collections::BTreeSet<WEdge> = mst::kruskal(&g).into_iter().collect();
            for e in &run.forest {
                assert!(mst_set.contains(e), "non-MST edge chosen in phase ≤ {k}");
            }
        }
    }

    #[test]
    fn rounds_per_phase_are_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::complete_wgraph(64, &mut rng);
        let mut nt = net(64, 2);
        let run = cc_mst(&mut nt, &g, None).unwrap();
        assert!(run.finished);
        let rounds = nt.cost().rounds;
        let per_phase = rounds as f64 / run.phases_run as f64;
        assert!(
            per_phase <= 40.0,
            "expected O(1) rounds per phase, got {per_phase} over {} phases",
            run.phases_run
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::complete_wgraph(20, &mut rng);
        let r1 = cc_mst(&mut net(20, 3), &g, None).unwrap();
        let r2 = cc_mst(&mut net(20, 3), &g, None).unwrap();
        assert_eq!(r1.forest, r2.forest);
        assert_eq!(r1.fragment_of, r2.fragment_of);
    }

    #[test]
    fn two_node_clique() {
        let mut g = cc_graph::WGraph::new(2);
        g.add_edge(0, 1, 7);
        let mut nt = net(2, 0);
        let run = cc_mst(&mut nt, &g, None).unwrap();
        assert!(run.finished);
        assert_eq!(run.forest, vec![WEdge::new(0, 1, 7)]);
    }

    #[test]
    fn scope_costs_recorded_per_phase() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = generators::complete_wgraph(16, &mut rng);
        let mut nt = net(16, 4);
        let run = cc_mst(&mut nt, &g, None).unwrap();
        for k in 1..=run.phases_run {
            let c = nt.counters().scope(&format!("lotker-phase-{k}")).unwrap();
            assert!(c.rounds > 0);
            assert!(c.messages > 0);
        }
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use cc_graph::{generators, mst, UnionFind};
    use cc_net::NetConfig;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Invariants of phase-limited runs over random weighted cliques:
        /// (i)  every fragment has at least the schedule's size bound
        ///      (Theorem 2(i));
        /// (ii) the chosen forest is a subset of the true MST;
        /// (iii') ∞-safety — the part of Theorem 2(iii) that Lemma 3
        ///      consumes: a fragment whose tree contains an ∞ edge has no
        ///      finite outgoing edge (so discarding ∞ edges never
        ///      fragments an *unfinished* tree). Full 2(iii) is specific
        ///      to Lotker's merge schedule; simultaneous Borůvka merges
        ///      (ours) satisfy the weaker form, which is all the paper's
        ///      Phase 1 uses.
        #[test]
        fn theorem2_invariants(seed in any::<u64>(), n in 8usize..28, phases in 1usize..3) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::complete_wgraph(n, &mut rng);
            let mut net = Net::new(NetConfig::kt1(n).with_seed(seed));
            let run = cc_mst(&mut net, &g, Some(phases)).unwrap();

            // (ii) forest ⊆ MST.
            let mst_set: std::collections::BTreeSet<WEdge> =
                mst::kruskal(&g).into_iter().collect();
            for e in &run.forest {
                prop_assert!(mst_set.contains(e), "non-MST edge selected");
            }

            // (i) fragment size bound (unless converged to one fragment).
            let mut sizes: HashMap<usize, usize> = HashMap::new();
            for &l in &run.fragment_of {
                *sizes.entry(l).or_default() += 1;
            }
            if sizes.len() > 1 {
                let bound = min_fragment_size_before_phase(run.phases_run + 1, n);
                for (&l, &s) in &sizes {
                    prop_assert!(s >= bound, "fragment {l}: size {s} < {bound}");
                }
            }

            // (iii') ∞-safety: fragments whose tree holds an ∞ edge have
            // no finite outgoing edge. Exercise it on the clique closure
            // of a *sparse* graph (cliques themselves have no ∞ edges).
            let sparse = generators::gnp_weighted(n, 0.2, 1000, &mut rng);
            let mut net2 = Net::new(NetConfig::kt1(n).with_seed(seed ^ 1));
            let run2 = cc_mst(&mut net2, &sparse, Some(phases)).unwrap();
            let mut uf = UnionFind::new(n);
            for e in &run2.forest {
                uf.union(e.u as usize, e.v as usize);
            }
            let has_inf: std::collections::HashSet<usize> = run2
                .forest
                .iter()
                .filter(|e| e.w == cc_graph::weight::INFINITE_W)
                .map(|e| run2.fragment_of[e.u as usize])
                .collect();
            for e in sparse.edges() {
                let (a, b) = (run2.fragment_of[e.u as usize], run2.fragment_of[e.v as usize]);
                if a != b {
                    prop_assert!(
                        !has_inf.contains(&a) && !has_inf.contains(&b),
                        "fragment with an ∞ tree edge still has finite outgoing edge {e:?}"
                    );
                }
            }
        }
    }
}

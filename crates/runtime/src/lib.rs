//! `cc-runtime`: a parallel, deterministic execution engine for node
//! programs.
//!
//! The `cc-net` simulator executes every node's step sequentially in ID
//! order, so wall-clock time scales as `O(n · per-node-work)` even though
//! the Congested Clique model is embarrassingly parallel *within* a round:
//! node states are structurally isolated (see
//! [`cc_net::program::NodeProgram`]) and messages only move at round
//! boundaries. This crate exploits that: node callbacks fan out across a
//! thread pool, each worker collects its nodes' outboxes locally, and a
//! deterministic exchange phase partitions envelopes into per-destination
//! inboxes without a global lock.
//!
//! # Determinism contract
//!
//! The engine preserves the model's semantics exactly, independent of
//! thread count and scheduling:
//!
//! * **Budgets** — per-link word budgets are enforced at send time through
//!   the same [`cc_net::SendRules`]/[`cc_net::LinkUse`] pieces
//!   [`cc_net::CliqueNet::step`] uses.
//! * **Inbox order** — each inbox is normalized to `(src, send-index)`
//!   order by construction (the exchange scans senders in ID order), never
//!   by thread arrival order.
//! * **Cost** — every worker meters into its own
//!   [`cc_net::Counters`] shard; shards fold at the round barrier, so
//!   rounds/messages/words/bits equal the serial driver's *exactly*.
//! * **Randomness** — [`rng::node_round_rng`] derives an independent
//!   `ChaCha8` stream from `(seed, node, round)`, so a node's draws do not
//!   depend on which worker ran it or on other nodes' consumption.
//!
//! The serial and parallel engines sit behind one [`Backend`] trait so
//! tests run both and assert bit-for-bit equivalence; see
//! `tests/equivalence.rs` and the `runtime_scaling` bench in `cc-bench`.
//! The [`KMachineBackend`] sits behind the same trait: it multiplexes the
//! `n` logical nodes onto `k` machines, keeping the logical execution
//! byte-identical (it delegates to the serial engine) while pricing each
//! round against per-machine-pair bandwidth (see
//! [`cc_model::MachineLedger`]).
//!
//! # Example
//!
//! ```
//! use cc_net::program::examples::FloodEcho;
//! use cc_net::NetConfig;
//! use cc_runtime::{adapt_all, Runtime};
//!
//! // Path 0-1-2-3: flood/echo from node 0 over the runtime.
//! let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
//! let programs: Vec<FloodEcho> = adj
//!     .iter()
//!     .enumerate()
//!     .map(|(v, nb)| FloodEcho::new(nb.clone(), v == 0))
//!     .collect();
//! let mut rt = Runtime::parallel(NetConfig::kt1(4));
//! let out = rt.run(adapt_all(programs), 100).unwrap();
//! assert_eq!(out[0].0.subtree, 4);
//! ```
//!
//! # Picking a backend
//!
//! [`Runtime::serial`] has zero threading overhead and is right for small
//! `n` or message-dominated protocols; [`Runtime::parallel`] wins when
//! per-node compute × `n` dwarfs the per-round synchronization cost
//! (large cliques, sketch-heavy rounds). Both produce identical results,
//! so the choice is purely a performance knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod backend;
pub mod kmachine;
pub mod parallel;
pub mod rng;
pub mod runtime;
pub mod serial;

pub use adapter::{adapt_all, Adapted};
pub use backend::{Backend, Ctx, Phase, Program, RoundOutput};
pub use kmachine::KMachineBackend;
pub use parallel::ParallelBackend;
pub use runtime::Runtime;
pub use serial::SerialBackend;

//! The k-machine backend: `n` logical nodes multiplexed onto `k` machines.
//!
//! The k-machine model (Klauck et al., and the mapping-based simulations
//! of the k-machine literature) runs an `n`-node clique protocol on `k ≤
//! n` physical machines: each machine hosts a contiguous block of logical
//! nodes, messages between co-located nodes are free, and each ordered
//! machine pair carries at most the per-link bandwidth per *machine
//! round*, fragmenting word-granularly across machine rounds when a
//! logical round's traffic exceeds it.
//!
//! The crucial design decision: the *logical* execution is delegated,
//! unchanged, to the [`SerialBackend`] — the mapping changes no inbox, no
//! cost counter, no RNG draw, and no fault decision, because all of those
//! are keyed by logical `(seed, node, round)`. That makes
//! `KMachine(k)` observationally identical to the serial engine for every
//! `k` *by construction* (property-tested in `runtime_determinism` and
//! the chaos equivalence suite), exactly as the simulation theorems
//! require. What the mapping *does* change is the machine-level price:
//! this backend folds every logical send through a
//! [`cc_model::MachineLedger`] and exposes the resulting
//! [`MachineStats`] — machine rounds, local vs remote words, worst
//! pair load — via [`KMachineBackend::stats`].

use crate::backend::{Backend, Phase, Program, RoundOutput};
use crate::serial::SerialBackend;
use cc_model::{MachineLedger, MachineStats, ModelSpec};
use cc_net::fault::FaultInjector;
use cc_net::{Envelope, NetConfig, NetError, Wire};

/// Serial execution of the logical protocol plus per-machine-pair
/// bandwidth accounting under a [`cc_model::Mapping`].
#[derive(Clone, Debug)]
pub struct KMachineBackend {
    inner: SerialBackend,
    ledger: MachineLedger,
}

impl KMachineBackend {
    /// A backend for an `n`-node protocol under `spec` (whose mapping
    /// determines the machine count; `Mapping::OneToOne` prices like
    /// `KMachine(n)`).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelSpec::validate_for`].
    pub fn new(n: usize, spec: &ModelSpec) -> Result<Self, cc_model::ModelError> {
        Ok(KMachineBackend {
            inner: SerialBackend,
            ledger: MachineLedger::new(n, spec)?,
        })
    }

    /// Number of machines the logical nodes are multiplexed onto.
    pub fn machines(&self) -> usize {
        self.ledger.machines()
    }

    /// Cumulative machine-level accounting (machine rounds, local/remote
    /// words, worst pair load) across all rounds executed so far.
    pub fn stats(&self) -> MachineStats {
        self.ledger.stats()
    }
}

impl Backend for KMachineBackend {
    fn name(&self) -> &'static str {
        "kmachine"
    }

    fn execute<P: Program>(
        &mut self,
        cfg: &NetConfig,
        round: u64,
        phase: Phase,
        programs: &mut [P],
        delivered: &[Vec<Envelope<P::Msg>>],
        inboxes: &mut [Vec<Envelope<P::Msg>>],
        done: &mut [bool],
        fault: Option<&dyn FaultInjector>,
    ) -> Result<RoundOutput<P::Msg>, NetError> {
        let out = self
            .inner
            .execute(cfg, round, phase, programs, delivered, inboxes, done, fault)?;
        // Machine accounting charges the *sends* of the logical round.
        // Under faults the pre-fault batch aggregation is exactly that
        // (inboxes are post-fault); without faults the filled inboxes are
        // the sends themselves. A round that errored above is not
        // accounted — the run is aborting.
        match &out.batches {
            Some(batches) => {
                for &((src, dst), (_count, words)) in batches {
                    self.ledger.record(src as usize, dst as usize, words);
                }
            }
            None => {
                for inbox in inboxes.iter() {
                    for env in inbox {
                        self.ledger.record(env.src, env.dst, env.msg.words().max(1));
                    }
                }
            }
        }
        self.ledger.end_round();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::adapter::adapt_all;
    use crate::runtime::Runtime;
    use cc_model::{Mapping, ModelSpec};
    use cc_net::program::examples::FloodEcho;
    use cc_net::NetConfig;

    /// Path graph 0-1-…-(n−1), flood/echo from node 0.
    fn path_programs(n: usize) -> Vec<FloodEcho> {
        (0..n)
            .map(|v| {
                let mut nb = Vec::new();
                if v > 0 {
                    nb.push(v - 1);
                }
                if v + 1 < n {
                    nb.push(v + 1);
                }
                FloodEcho::new(nb, v == 0)
            })
            .collect()
    }

    #[test]
    fn logical_execution_matches_serial_for_every_k() {
        let n = 8;
        let mut serial = Runtime::serial(NetConfig::kt1(n).with_seed(3));
        let reference = serial.run(adapt_all(path_programs(n)), 100).unwrap();
        for k in 1..=n {
            let mut rt = Runtime::kmachine(NetConfig::kt1(n).with_seed(3), k);
            let out = rt.run(adapt_all(path_programs(n)), 100).unwrap();
            assert_eq!(rt.cost(), serial.cost(), "k={k} cost drifted");
            for (a, b) in out.iter().zip(reference.iter()) {
                assert_eq!(a.0.subtree, b.0.subtree, "k={k} output drifted");
            }
        }
    }

    #[test]
    fn k_equals_n_prices_like_the_clique_and_k_equals_one_is_free() {
        let n = 8;
        let mut full = Runtime::kmachine(NetConfig::kt1(n), n);
        full.run(adapt_all(path_programs(n)), 100).unwrap();
        let s = full.backend().stats();
        assert_eq!(s.logical_rounds, full.cost().rounds);
        assert_eq!(
            s.machine_rounds, s.logical_rounds,
            "at k = n every logical round costs exactly one machine round"
        );
        assert_eq!(s.local_words, 0, "no co-located nodes at k = n");

        let mut single = Runtime::kmachine(NetConfig::kt1(n), 1);
        single.run(adapt_all(path_programs(n)), 100).unwrap();
        let s1 = single.backend().stats();
        assert_eq!(s1.remote_words, 0, "everything is co-located at k = 1");
        assert_eq!(s1.machine_rounds, s1.logical_rounds);
        assert_eq!(
            s.local_words + s.remote_words,
            s1.local_words,
            "total traffic is mapping-invariant"
        );
    }

    #[test]
    fn intermediate_k_splits_traffic_between_local_and_remote() {
        // Path flood on 2 machines: only the 3-4 edge crosses machines.
        let n = 8;
        let mut rt = Runtime::kmachine(NetConfig::kt1(n), 2);
        rt.run(adapt_all(path_programs(n)), 100).unwrap();
        let s = rt.backend().stats();
        assert!(s.local_words > 0);
        assert!(s.remote_words > 0);
        assert!(s.machine_rounds >= s.logical_rounds);
        assert_eq!(rt.backend().machines(), 2);
    }

    #[test]
    fn for_model_applies_the_spec_to_the_config() {
        let spec = ModelSpec::clique().with_bandwidth(4).kmachine(2);
        let rt = Runtime::for_model(NetConfig::kt1(6), &spec);
        assert_eq!(rt.config().link_words, 4);
        assert_eq!(rt.config().mapping, Mapping::KMachine(2));
        assert_eq!(rt.backend_name(), "kmachine");
        assert_eq!(rt.backend().machines(), 2);
    }

    #[test]
    #[should_panic(expected = "model spec invalid")]
    fn kmachine_rejects_more_machines_than_nodes() {
        let _ = Runtime::kmachine(NetConfig::kt1(4), 5);
    }
}

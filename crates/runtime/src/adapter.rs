//! Running existing [`cc_net::NodeProgram`]s on the runtime.
//!
//! The simulator's program trait predates this crate and passes a raw
//! [`cc_net::Outbox`]; the runtime's [`Program`] passes a [`Ctx`] (which
//! adds per-round randomness and thread-safety bounds). [`Adapted`]
//! bridges the two so protocols written against `cc-net` — like
//! [`cc_net::program::examples::FloodEcho`] — run on either engine
//! without modification.

use crate::backend::{Ctx, Program};
use cc_net::program::NodeProgram;
use cc_net::{Envelope, Wire};

/// Wraps a [`cc_net::NodeProgram`] as a runtime [`Program`].
///
/// The inner program is public so callers can extract outputs after
/// [`Runtime::run`](crate::Runtime::run) returns the final states.
#[derive(Clone, Debug)]
pub struct Adapted<P>(pub P);

impl<P> Program for Adapted<P>
where
    P: NodeProgram + Send,
    P::Msg: Wire + Clone + Send + Sync,
{
    type Msg = P::Msg;

    fn start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let (me, n) = (ctx.me(), ctx.n());
        self.0.start(me, n, ctx.outbox());
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Envelope<Self::Msg>]) -> bool {
        let me = ctx.me();
        self.0.round(me, inbox, ctx.outbox())
    }
}

/// Wraps a whole per-node program vector (one call site instead of a map).
pub fn adapt_all<P>(programs: Vec<P>) -> Vec<Adapted<P>>
where
    P: NodeProgram + Send,
    P::Msg: Wire + Clone + Send + Sync,
{
    programs.into_iter().map(Adapted).collect()
}

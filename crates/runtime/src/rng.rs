//! Deterministic per-`(seed, node, round)` randomness.
//!
//! The simulator's [`cc_net::CliqueNet::node_rng`] hands each node one
//! *persistent* stream whose position depends on how much randomness the
//! node consumed in earlier rounds. That is fine for a serial driver, but
//! a parallel engine wants a stronger property: the bits a node draws in
//! round `r` must be a pure function of `(seed, node, r)`, so no
//! scheduling decision — and no refactor that moves a draw across a round
//! boundary — can perturb them. This module derives exactly that: an
//! independent `ChaCha8` stream per `(seed, node, round)` triple.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 — the standard 64-bit finalizer used to decorrelate seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `ChaCha8` stream for `(seed, node, round)`.
///
/// Distinct triples yield independent streams; equal triples yield
/// identical streams, on every backend and thread count.
pub fn node_round_rng(seed: u64, node: usize, round: u64) -> ChaCha8Rng {
    // Chain the three coordinates through SplitMix64 so that nearby
    // (node, round) pairs land on unrelated key material, then expand into
    // the full 32-byte ChaCha key.
    let mut state = seed;
    let a = splitmix64(&mut state);
    state ^= (node as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    let b = splitmix64(&mut state);
    state ^= round.wrapping_mul(0x9FB2_1C65_1E98_DF25);
    let c = splitmix64(&mut state);
    let d = splitmix64(&mut state);

    let mut key = [0u8; 32];
    for (chunk, word) in key.chunks_mut(8).zip([a, b, c, d]) {
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn pure_function_of_the_triple() {
        let mut a = node_round_rng(7, 3, 12);
        let mut b = node_round_rng(7, 3, 12);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn coordinates_are_decorrelated() {
        let base: Vec<u64> = {
            let mut r = node_round_rng(7, 3, 12);
            (0..4).map(|_| r.next_u64()).collect()
        };
        for (seed, node, round) in [(8, 3, 12), (7, 4, 12), (7, 3, 13), (7, 12, 3)] {
            let mut r = node_round_rng(seed, node, round);
            let other: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
            assert_ne!(
                base,
                other,
                "stream collision for {:?}",
                (seed, node, round)
            );
        }
    }
}

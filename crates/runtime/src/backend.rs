//! The execution-engine contract: [`Program`], [`Ctx`], and [`Backend`].
//!
//! A backend executes *one synchronous round* over every node; the
//! [`Runtime`](crate::Runtime) facade owns the cross-round driver loop
//! (start round, termination detection, round caps, cost accumulation),
//! so the loop's semantics cannot drift between backends.

use crate::rng::node_round_rng;
use cc_net::budget::{LinkUse, SendRules};
use cc_net::fault::{FaultInjector, FaultRecord};
use cc_net::{Cost, Counters, Envelope, NetConfig, NetError, Outbox, Wire};
use cc_trace::SpanTiming;
use rand_chacha::ChaCha8Rng;

/// A per-node protocol state machine, runnable on any backend.
///
/// The runtime's analogue of [`cc_net::NodeProgram`]: the same
/// start/round shape, but `Send` (states migrate to worker threads) with
/// messages that are `Clone + Send + Sync` (the lock-free exchange phase
/// reads staged envelopes from all workers). Use
/// [`Adapted`](crate::Adapted) to run an existing
/// [`cc_net::NodeProgram`] unchanged.
pub trait Program: Send {
    /// Message type exchanged by the protocol.
    type Msg: Wire + Clone + Send + Sync;

    /// Called once in round 0, before any delivery, to send initial
    /// messages.
    fn start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called every subsequent round with the node's inbox (sorted by
    /// `(src, send-index)`). Return `true` once this node has terminated;
    /// the driver stops when every node has terminated and no messages
    /// are in flight.
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Envelope<Self::Msg>]) -> bool;
}

/// Which callback a round executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Round 0: [`Program::start`].
    Start,
    /// Every later round: [`Program::round`].
    Round,
}

/// One node's view of the current round: identity, sends, randomness.
pub struct Ctx<'a, M: Wire> {
    node: usize,
    n: usize,
    round: u64,
    seed: u64,
    outbox: Outbox<'a, M>,
    rng: Option<ChaCha8Rng>,
}

impl<'a, M: Wire> Ctx<'a, M> {
    /// This node's ID.
    pub fn me(&self) -> usize {
        self.node
    }

    /// Clique size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds completed before this one (0 during [`Phase::Start`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sends `msg` to `dst` this round, enforcing the same rules as
    /// [`cc_net::Outbox::send`] (errors are latched and re-raised by the
    /// driver even if the result is ignored).
    ///
    /// # Errors
    ///
    /// See [`cc_net::Outbox::send`].
    pub fn send(&mut self, dst: usize, msg: M) -> Result<(), NetError> {
        self.outbox.send(dst, msg)
    }

    /// Remaining word budget toward `dst` this round.
    pub fn budget_left(&self, dst: usize) -> u64 {
        self.outbox.budget_left(dst)
    }

    /// The underlying outbox — lets [`cc_net::NodeProgram`] code run
    /// unchanged (see [`Adapted`](crate::Adapted)).
    pub fn outbox(&mut self) -> &mut Outbox<'a, M> {
        &mut self.outbox
    }

    /// This node's private randomness for *this round*: an independent
    /// `ChaCha8` stream derived from `(seed, node, round)`, identical on
    /// every backend (see [`crate::rng::node_round_rng`]).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        let (seed, node, round) = (self.seed, self.node, self.round);
        self.rng
            .get_or_insert_with(|| node_round_rng(seed, node, round))
    }
}

impl<'a, M: Wire + Clone> Ctx<'a, M> {
    /// Sends the same message along every link (the broadcast-model
    /// primitive; also valid, and counted as `n − 1` messages, under
    /// unicast).
    ///
    /// # Errors
    ///
    /// See [`cc_net::Outbox::broadcast`].
    pub fn broadcast(&mut self, msg: M) -> Result<(), NetError> {
        self.outbox.broadcast(msg)
    }
}

/// What one executed round hands back to the driver (the next round's
/// inboxes are written into the caller-owned pooled buffer instead).
#[derive(Debug)]
pub struct RoundOutput<M> {
    /// Message/word/bit cost of this round (`rounds` stays 0; the driver
    /// counts rounds).
    pub cost: Cost,
    /// `(round, src, dst)` per message, empty unless
    /// [`NetConfig::record_transcript`] is set.
    pub transcript: Vec<(u64, u32, u32)>,
    /// Wall-clock span of each compute worker this round, in worker (=
    /// node-range) order. Timing only — the driver forwards these to its
    /// tracer as [`cc_trace::Event::WorkerSpan`]s, which are excluded from
    /// model-event comparisons (the serial engine reports one span
    /// covering all nodes; the parallel engine one per worker).
    pub worker_spans: Vec<SpanTiming>,
    /// Faults injected this round, in `(node, send-index)` order (empty
    /// without an injector). The driver emits these as
    /// [`cc_trace::Event::Fault`]s after the round's batches.
    pub faults: Vec<FaultRecord>,
    /// Fault-deferred envelopes: `(delivery_round, env)`, in `(node,
    /// send-index)` order. The driver owns the cross-round schedule.
    pub deferred: Vec<(u64, Envelope<M>)>,
    /// Pre-fault `(src, dst) → (count, words)` batch aggregation, sorted
    /// by key. `Some` only when an injector is active: `inboxes` are then
    /// post-fault, so the driver cannot reconstruct the *sent* batches
    /// (which is what [`cc_trace::Event::MessageBatch`] reports and what
    /// [`cc_net::CliqueNet::step`] emits) from them.
    #[allow(clippy::type_complexity)]
    pub batches: Option<Vec<cc_net::BatchEntry>>,
}

/// An engine that can execute one synchronous round.
///
/// Implementations must be observationally identical — same inboxes, same
/// cost, same errors, same program mutations — for any [`Program`]; they
/// may only differ in wall-clock. `tests/equivalence.rs` and the
/// `runtime_determinism` proptest in `cc-net` hold them to that.
pub trait Backend {
    /// Human-readable name (used by benches and reports).
    fn name(&self) -> &'static str;

    /// Executes one round of `phase` over all `programs`.
    ///
    /// `delivered[v]` is node `v`'s inbox for this round; `done[v]` is
    /// updated from [`Program::round`] return values. `round` is the
    /// number of rounds completed before this one. `inboxes` is the
    /// caller's pooled delivery buffer — `n` empty vectors whose retained
    /// capacity is the whole point; the backend fills `inboxes[v]` with
    /// node `v`'s next-round inbox in `(src, send-index)` order. With
    /// `fault` present, crashed nodes are skipped (and marked done so the
    /// driver can terminate), the round's link budget honors any squeeze,
    /// and every staged message passes through
    /// [`cc_net::fault::apply_faults`] after metering.
    ///
    /// # Errors
    ///
    /// The first send violation by the lowest-ID offending node (the
    /// contents of `inboxes` are unspecified after an error; the driver
    /// recycles them regardless).
    #[allow(clippy::too_many_arguments)] // one seam for engine parity; bundling would obscure it
    fn execute<P: Program>(
        &mut self,
        cfg: &NetConfig,
        round: u64,
        phase: Phase,
        programs: &mut [P],
        delivered: &[Vec<Envelope<P::Msg>>],
        inboxes: &mut [Vec<Envelope<P::Msg>>],
        done: &mut [bool],
        fault: Option<&dyn FaultInjector>,
    ) -> Result<RoundOutput<P::Msg>, NetError>;
}

/// The effective send rules for one round: config-derived, round-stamped,
/// and squeezed if the injector says so — shared by both backends and
/// matching what [`cc_net::CliqueNet::step`] computes.
pub(crate) fn round_rules(
    cfg: &NetConfig,
    round: u64,
    fault: Option<&dyn FaultInjector>,
) -> SendRules {
    let mut rules = SendRules::from_config(cfg).for_round(round);
    if let Some(cap) = fault.and_then(|inj| inj.link_words(round)) {
        rules = rules.with_link_words_capped(cap);
    }
    rules
}

/// Runs one node's callback and stages its sends — the single code path
/// both backends share, so their per-node semantics cannot diverge.
///
/// `buf` is the (empty) staging buffer the node's outbox fills; a pooled
/// caller passes the drained buffer of the previous node back in.
///
/// Returns the staged envelopes, the first latched violation, and whether
/// the node reported termination.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_node<P: Program>(
    program: &mut P,
    node: usize,
    cfg: &NetConfig,
    rules: SendRules,
    links: &mut LinkUse,
    round: u64,
    phase: Phase,
    inbox: &[Envelope<P::Msg>],
    buf: Vec<Envelope<P::Msg>>,
) -> (Vec<Envelope<P::Msg>>, Option<NetError>, bool) {
    let mut ctx = Ctx {
        node,
        n: cfg.n,
        round,
        seed: cfg.seed,
        outbox: Outbox::assemble_in(node, rules, links, buf),
        rng: None,
    };
    let done = match phase {
        Phase::Start => {
            program.start(&mut ctx);
            false
        }
        Phase::Round => program.round(&mut ctx, inbox),
    };
    let (staged, error) = ctx.outbox.finish();
    links.reset();
    (staged, error, done)
}

/// Meters `staged` envelopes into `counters` and appends transcript
/// entries when recording — the shared per-node accounting step.
pub(crate) fn meter<M: Wire>(
    staged: &[Envelope<M>],
    cfg: &NetConfig,
    round: u64,
    counters: &mut Counters,
    transcript: &mut Vec<(u64, u32, u32)>,
) {
    let word_bits = cfg.word_bits();
    for env in staged {
        counters.add_message(env.msg.words().max(1), word_bits);
        if cfg.record_transcript {
            transcript.push((round, env.src as u32, env.dst as u32));
        }
    }
}

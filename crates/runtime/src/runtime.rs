//! The [`Runtime`] facade: one cross-round driver loop over any backend.
//!
//! Mirrors [`cc_net::program::run_program`] exactly — same start round,
//! same termination condition (every node done *and* no messages in
//! flight), same round-cap errors — so a protocol's observable behavior
//! is a function of the protocol alone, never of the engine under it.

use crate::backend::{Backend, Phase, Program, RoundOutput};
use crate::parallel::ParallelBackend;
use crate::serial::SerialBackend;
use cc_net::{Cost, Counters, Envelope, NetConfig, NetError};

/// Executes node programs round-by-round on a pluggable [`Backend`].
#[derive(Debug)]
pub struct Runtime<B: Backend> {
    cfg: NetConfig,
    backend: B,
    counters: Counters,
    transcript: Vec<(u64, u32, u32)>,
}

impl Runtime<SerialBackend> {
    /// A single-threaded runtime (the reference engine).
    pub fn serial(cfg: NetConfig) -> Self {
        Runtime::new(cfg, SerialBackend)
    }
}

impl Runtime<ParallelBackend> {
    /// A runtime using all available hardware parallelism.
    pub fn parallel(cfg: NetConfig) -> Self {
        Runtime::new(cfg, ParallelBackend::new())
    }

    /// A runtime with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn parallel_with_threads(cfg: NetConfig, threads: usize) -> Self {
        Runtime::new(cfg, ParallelBackend::with_threads(threads))
    }
}

impl<B: Backend> Runtime<B> {
    /// A runtime over an arbitrary backend.
    pub fn new(cfg: NetConfig, backend: B) -> Self {
        Runtime {
            cfg,
            backend,
            counters: Counters::new(),
            transcript: Vec::new(),
        }
    }

    /// Clique size.
    pub fn n(&self) -> usize {
        self.cfg.n
    }

    /// The configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The backend's human-readable name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The backend itself (e.g. to query a worker count).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Accumulated cost so far (across all `run` calls).
    pub fn cost(&self) -> Cost {
        self.counters.total()
    }

    /// The cost counters (for scope queries).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Opens a named cost scope (see [`Counters::begin_scope`]).
    pub fn begin_scope(&mut self, name: impl Into<String>) {
        self.counters.begin_scope(name);
    }

    /// Closes the innermost cost scope and returns its delta.
    pub fn end_scope(&mut self) -> Cost {
        self.counters.end_scope()
    }

    /// The recorded `(round, src, dst)` transcript (empty unless
    /// [`NetConfig::record_transcript`] is set).
    pub fn transcript(&self) -> &[(u64, u32, u32)] {
        &self.transcript
    }

    /// Runs one program instance per node until every node reports done
    /// and the network is quiet, or `max_rounds` elapses.
    ///
    /// Returns the final program states (so callers can extract outputs).
    ///
    /// # Errors
    ///
    /// Propagates send violations; returns [`NetError::RoundCapExceeded`]
    /// if the protocol does not terminate within `max_rounds` (or the
    /// config's `round_cap` watchdog fires first).
    ///
    /// # Panics
    ///
    /// Panics unless `programs.len() == self.n()`.
    pub fn run<P: Program>(
        &mut self,
        mut programs: Vec<P>,
        max_rounds: u64,
    ) -> Result<Vec<P>, NetError> {
        let n = self.cfg.n;
        assert_eq!(programs.len(), n, "one program per node");
        let mut done = vec![false; n];
        let empty: Vec<Vec<Envelope<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        let mut pending = self.execute(Phase::Start, &mut programs, &empty, &mut done)?;
        let mut rounds = 1u64;
        loop {
            let all_done = done.iter().all(|&d| d);
            if all_done && pending.iter().all(Vec::is_empty) {
                return Ok(programs);
            }
            if rounds >= max_rounds {
                return Err(NetError::RoundCapExceeded { cap: max_rounds });
            }
            pending = self.execute(Phase::Round, &mut programs, &pending, &mut done)?;
            rounds += 1;
        }
    }

    /// Executes one round and folds its cost/transcript into the runtime.
    fn execute<P: Program>(
        &mut self,
        phase: Phase,
        programs: &mut [P],
        delivered: &[Vec<Envelope<P::Msg>>],
        done: &mut [bool],
    ) -> Result<Vec<Vec<Envelope<P::Msg>>>, NetError> {
        if let Some(cap) = self.cfg.round_cap {
            if self.counters.total().rounds >= cap {
                return Err(NetError::RoundCapExceeded { cap });
            }
        }
        let round = self.counters.total().rounds;
        let RoundOutput {
            inboxes,
            cost,
            transcript,
        } = self
            .backend
            .execute(&self.cfg, round, phase, programs, delivered, done)?;
        self.counters.merge(cost);
        self.counters.add_round();
        self.transcript.extend(transcript);
        Ok(inboxes)
    }
}

//! The [`Runtime`] facade: one cross-round driver loop over any backend.
//!
//! Mirrors [`cc_net::program::run_program`] exactly — same start round,
//! same termination condition (every node done *and* no messages in
//! flight), same round-cap errors — so a protocol's observable behavior
//! is a function of the protocol alone, never of the engine under it.

use crate::backend::{Backend, Phase, Program, RoundOutput};
use crate::kmachine::KMachineBackend;
use crate::parallel::ParallelBackend;
use crate::serial::SerialBackend;
use cc_model::{Mapping, ModelSpec};
use cc_net::fault::FaultInjector;
use cc_net::{Cost, Counters, Envelope, NetConfig, NetError, Wire};
use cc_trace::{Event, FaultKind, NullTracer, Tracer};
use std::collections::BTreeMap;
use std::fmt;

/// Executes node programs round-by-round on a pluggable [`Backend`].
pub struct Runtime<B: Backend> {
    cfg: NetConfig,
    backend: B,
    counters: Counters,
    transcript: Vec<(u64, u32, u32)>,
    tracer: Box<dyn Tracer>,
    /// `tracer.enabled()` cached at attach time (see
    /// [`cc_net::CliqueNet::set_tracer`] for the rationale).
    tracing: bool,
    /// `tracer.wants_timing()`, cached likewise; gates [`Event::WorkerSpan`]
    /// forwarding (backends measure spans unconditionally — one clock read
    /// per worker per round, not per node).
    timing: bool,
    /// Attached fault injector, if any (see `set_fault_injector`).
    fault: Option<Box<dyn FaultInjector>>,
    /// `fault.is_some()`, cached (the zero-overhead contract, as in
    /// [`cc_net::CliqueNet`]).
    faulty: bool,
    /// Which nodes have been observed crashed (gates the one-time
    /// [`Event::NodeCrash`] emission and `is_crashed`).
    crashed_seen: Vec<bool>,
}

impl<B: Backend + fmt::Debug> fmt::Debug for Runtime<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("cfg", &self.cfg)
            .field("backend", &self.backend)
            .field("cost", &self.counters.total())
            .field("tracing", &self.tracing)
            .finish_non_exhaustive()
    }
}

impl Runtime<SerialBackend> {
    /// A single-threaded runtime (the reference engine).
    pub fn serial(cfg: NetConfig) -> Self {
        Runtime::new(cfg, SerialBackend)
    }
}

impl Runtime<ParallelBackend> {
    /// A runtime using all available hardware parallelism.
    pub fn parallel(cfg: NetConfig) -> Self {
        Runtime::new(cfg, ParallelBackend::new())
    }

    /// A runtime with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn parallel_with_threads(cfg: NetConfig, threads: usize) -> Self {
        Runtime::new(cfg, ParallelBackend::with_threads(threads))
    }
}

impl Runtime<KMachineBackend> {
    /// A runtime multiplexing the `cfg.n` logical nodes onto `k`
    /// machines (contiguous blocks; see [`Mapping::machine_of`]). The
    /// logical execution is identical to [`Runtime::serial`] for every
    /// `k`; machine-level accounting is exposed via
    /// `rt.backend().stats()`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ cfg.n`.
    pub fn kmachine(cfg: NetConfig, k: usize) -> Self {
        let spec = ModelSpec {
            mapping: Mapping::KMachine(k),
            ..cfg.model()
        };
        Self::for_model(cfg, &spec)
    }

    /// A runtime enforcing and pricing exactly `spec`: the config's
    /// bandwidth / link-mode / mapping are replaced by the spec's, and
    /// the backend accounts machine rounds under the spec's mapping.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid for `cfg.n` nodes.
    pub fn for_model(cfg: NetConfig, spec: &ModelSpec) -> Self {
        let cfg = cfg.with_model(spec);
        let backend =
            KMachineBackend::new(cfg.n, spec).expect("with_model already validated the spec");
        Runtime::new(cfg, backend)
    }
}

impl<B: Backend> Runtime<B> {
    /// A runtime over an arbitrary backend.
    pub fn new(cfg: NetConfig, backend: B) -> Self {
        let n = cfg.n;
        Runtime {
            cfg,
            backend,
            counters: Counters::new(),
            transcript: Vec::new(),
            tracer: Box::new(NullTracer),
            tracing: false,
            timing: false,
            fault: None,
            faulty: false,
            crashed_seen: vec![false; n],
        }
    }

    /// Attaches a [`FaultInjector`]; subsequent rounds interpose on
    /// message delivery, crashes, and bandwidth exactly like
    /// [`cc_net::CliqueNet::set_fault_injector`] — the same plan replays
    /// byte-identically on either engine.
    pub fn set_fault_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.fault = Some(injector);
        self.faulty = true;
        self.crashed_seen = vec![false; self.cfg.n];
    }

    /// Detaches and returns the current injector, restoring fault-free
    /// execution.
    pub fn take_fault_injector(&mut self) -> Option<Box<dyn FaultInjector>> {
        self.faulty = false;
        self.fault.take()
    }

    /// Whether `node` has fail-stop crashed in a round that has already
    /// executed.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.crashed_seen.get(node).copied().unwrap_or(false)
    }

    /// Attaches a [`Tracer`] sink; subsequent rounds and scopes emit
    /// structured [`Event`]s into it.
    ///
    /// The *model* events (everything but [`Event::WorkerSpan`]) are
    /// emitted by this driver from the backend's [`RoundOutput`], never by
    /// worker threads — so serial and parallel backends produce identical
    /// model-event streams for the same protocol and seed, and the
    /// lock-free exchange stays lock-free.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracing = tracer.enabled();
        self.timing = tracer.wants_timing();
        self.tracer = tracer;
    }

    /// Detaches and returns the current tracer (flushed), restoring the
    /// disabled default.
    pub fn take_tracer(&mut self) -> Box<dyn Tracer> {
        let mut t = std::mem::replace(&mut self.tracer, Box::new(NullTracer));
        t.flush();
        self.tracing = false;
        self.timing = false;
        t
    }

    /// Clique size.
    pub fn n(&self) -> usize {
        self.cfg.n
    }

    /// The configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The backend's human-readable name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The backend itself (e.g. to query a worker count).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Accumulated cost so far (across all `run` calls).
    pub fn cost(&self) -> Cost {
        self.counters.total()
    }

    /// The cost counters (for scope queries).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Opens a named cost scope (see [`Counters::begin_scope`]).
    pub fn begin_scope(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.tracing {
            self.tracer.record(Event::ScopeEnter {
                name: name.clone(),
                round: self.counters.total().rounds,
            });
        }
        self.counters.begin_scope(name);
    }

    /// Closes the innermost cost scope and returns its delta.
    pub fn end_scope(&mut self) -> Cost {
        let delta = self.counters.end_scope();
        if self.tracing {
            let name = self
                .counters
                .scopes()
                .last()
                .map(|(n, _)| n.clone())
                .unwrap_or_default();
            self.tracer.record(Event::ScopeExit {
                name,
                delta: delta.snapshot(),
            });
        }
        delta
    }

    /// The recorded `(round, src, dst)` transcript (empty unless
    /// [`NetConfig::record_transcript`] is set).
    pub fn transcript(&self) -> &[(u64, u32, u32)] {
        &self.transcript
    }

    /// Runs one program instance per node until every node reports done
    /// and the network is quiet, or `max_rounds` elapses.
    ///
    /// Returns the final program states (so callers can extract outputs).
    ///
    /// # Errors
    ///
    /// Propagates send violations; returns [`NetError::RoundCapExceeded`]
    /// if the protocol does not terminate within `max_rounds` (or the
    /// config's `round_cap` watchdog fires first).
    ///
    /// # Panics
    ///
    /// Panics unless `programs.len() == self.n()`.
    pub fn run<P: Program>(
        &mut self,
        mut programs: Vec<P>,
        max_rounds: u64,
    ) -> Result<Vec<P>, NetError> {
        let n = self.cfg.n;
        assert_eq!(programs.len(), n, "one program per node");
        let mut done = vec![false; n];
        // Two pooled inbox buffers, swapped each round: `cur` is this
        // round's deliveries, `next` is the (drained) buffer the backend
        // fills. After the first few rounds every queue has warmed up to
        // the protocol's working set and rounds stop allocating.
        let mut cur: Vec<Vec<Envelope<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        let mut next: Vec<Vec<Envelope<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        // Fault-deferred messages: delivery round → envelopes. Owned here
        // (not on `self`) because the message type is per-run.
        let mut deferred: BTreeMap<u64, Vec<Envelope<P::Msg>>> = BTreeMap::new();
        let late = self.execute(Phase::Start, &mut programs, &cur, &mut next, &mut done)?;
        for (due, env) in late {
            deferred.entry(due).or_default().push(env);
        }
        std::mem::swap(&mut cur, &mut next);
        let mut rounds = 1u64;
        loop {
            let all_done = done.iter().all(|&d| d);
            if all_done && cur.iter().all(Vec::is_empty) && deferred.is_empty() {
                return Ok(programs);
            }
            if rounds >= max_rounds {
                return Err(NetError::RoundCapExceeded { cap: max_rounds });
            }
            // Deferred messages due this round join the regular
            // deliveries; re-sorting keeps the per-sender inbox order
            // stable (same normalization as CliqueNet::step).
            if let Some(late) = deferred.remove(&self.counters.total().rounds) {
                for env in late {
                    cur[env.dst].push(env);
                }
                for q in &mut cur {
                    q.sort_by_key(|e| e.src);
                }
            }
            let late = self.execute(Phase::Round, &mut programs, &cur, &mut next, &mut done)?;
            for (due, env) in late {
                deferred.entry(due).or_default().push(env);
            }
            // Recycle the consumed buffer (clear keeps capacity) and swap
            // it in as the next round's fill target.
            for q in &mut cur {
                q.clear();
            }
            std::mem::swap(&mut cur, &mut next);
            rounds += 1;
        }
    }

    /// Executes one round and folds its cost/transcript into the runtime.
    /// The backend writes the next round's inboxes into `inboxes` (the
    /// caller's pooled buffer); the return value is any newly
    /// fault-deferred envelopes (the caller owns the cross-round defer
    /// schedule).
    #[allow(clippy::type_complexity)]
    fn execute<P: Program>(
        &mut self,
        phase: Phase,
        programs: &mut [P],
        delivered: &[Vec<Envelope<P::Msg>>],
        inboxes: &mut [Vec<Envelope<P::Msg>>],
        done: &mut [bool],
    ) -> Result<Vec<(u64, Envelope<P::Msg>)>, NetError> {
        if let Some(cap) = self.cfg.round_cap {
            if self.counters.total().rounds >= cap {
                return Err(NetError::RoundCapExceeded { cap });
            }
        }
        let round = self.counters.total().rounds;
        // Whole-round wall clock (fault pre-pass + backend execution +
        // event emission), mirroring `CliqueNet::step` — the gap between
        // this and the worker spans is engine overhead.
        let round_t0 = if self.timing {
            Some(std::time::Instant::now())
        } else {
            None
        };
        if self.tracing {
            self.tracer.record(Event::RoundStart { round });
        }
        // Fault pre-pass, mirroring CliqueNet::step's event order exactly:
        // RoundStart → squeeze fault → newly crashed nodes in ID order.
        if self.faulty {
            let inj = self.fault.as_deref().expect("faulty implies injector");
            if let Some(cap) = inj.link_words(round) {
                if cap < self.cfg.link_words && self.tracing {
                    self.tracer.record(Event::Fault {
                        round,
                        kind: FaultKind::Squeeze,
                        src: 0,
                        dst: 0,
                        index: 0,
                        info: self.cfg.link_words.min(cap.max(1)),
                    });
                }
            }
            for (v, seen) in self.crashed_seen.iter_mut().enumerate() {
                if !*seen && inj.crashed(round, v) {
                    *seen = true;
                    if self.tracing {
                        self.tracer.record(Event::NodeCrash {
                            round,
                            node: v as u32,
                        });
                    }
                }
            }
        }
        let RoundOutput {
            cost,
            transcript,
            worker_spans,
            faults,
            deferred,
            batches,
        } = self.backend.execute(
            &self.cfg,
            round,
            phase,
            programs,
            delivered,
            inboxes,
            done,
            self.fault.as_deref(),
        )?;
        self.counters.merge(cost);
        self.counters.add_round();
        self.transcript.extend(transcript);
        if self.tracing {
            // (src, dst) → (count, words), aggregated over the round and
            // emitted in sorted order: a deterministic function of the
            // *sends* alone, so every backend produces the same batch
            // stream (the same normalization CliqueNet::step applies).
            // Under faults the backend reports the pre-fault aggregation
            // (inboxes are post-fault); without faults the inboxes are
            // exactly the sends and we aggregate them here.
            let batches: Vec<((u32, u32), (u32, u64))> = match batches {
                Some(b) => b,
                None => {
                    // Without faults the filled inboxes are exactly the
                    // sends. Each inbox holds one destination in src-sorted
                    // order, so same-src envelopes form contiguous runs —
                    // fold each run to one entry, then one global sort
                    // (replacing a per-message BTreeMap insert).
                    let mut agg: Vec<((u32, u32), (u32, u64))> = Vec::new();
                    for inbox in inboxes.iter() {
                        let mut run: Option<((u32, u32), (u32, u64))> = None;
                        for env in inbox {
                            let key = (env.src as u32, env.dst as u32);
                            let words = env.msg.words().max(1);
                            match run.as_mut() {
                                Some((k, slot)) if *k == key => {
                                    slot.0 += 1;
                                    slot.1 += words;
                                }
                                _ => {
                                    if let Some(done_run) = run.take() {
                                        agg.push(done_run);
                                    }
                                    run = Some((key, (1, words)));
                                }
                            }
                        }
                        if let Some(done_run) = run {
                            agg.push(done_run);
                        }
                    }
                    agg.sort_unstable_by_key(|&(k, _)| k);
                    agg
                }
            };
            for ((src, dst), (count, words)) in batches {
                self.tracer.record(Event::MessageBatch {
                    round,
                    src,
                    dst,
                    count,
                    words,
                });
            }
            for rec in &faults {
                self.tracer.record(rec.to_event());
            }
            if self.timing {
                for span in worker_spans {
                    self.tracer.record(Event::WorkerSpan {
                        round,
                        worker: span.worker,
                        node_lo: span.node_lo,
                        node_hi: span.node_hi,
                        nanos: span.nanos,
                    });
                }
            }
            if let Some(t0) = round_t0 {
                self.tracer.record(Event::RoundWall {
                    round,
                    nanos: t0.elapsed().as_nanos() as u64,
                });
            }
            self.tracer.record(Event::RoundEnd {
                round,
                messages: cost.messages,
                words: cost.words,
            });
        }
        Ok(deferred)
    }
}

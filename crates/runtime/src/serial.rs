//! The serial reference backend.
//!
//! Executes nodes in ID order on the calling thread, exactly like
//! [`cc_net::CliqueNet::step`]: same send validation, same
//! abort-on-first-violation behavior, same inbox normalization, same
//! fault interposition. This is the semantic baseline the parallel
//! backend is tested against — and the faster choice when
//! `n · per-node-work` is small enough that thread fan-out costs more
//! than it saves.

use crate::backend::{meter, round_rules, run_node, Backend, Phase, Program, RoundOutput};
use cc_net::budget::LinkUse;
use cc_net::fault::{apply_faults, FaultInjector};
use cc_net::{Counters, Envelope, NetConfig, NetError, Wire};
use cc_trace::SpanTiming;
use std::collections::BTreeMap;
use std::time::Instant;

/// Single-threaded engine; the reference implementation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialBackend;

impl Backend for SerialBackend {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute<P: Program>(
        &mut self,
        cfg: &NetConfig,
        round: u64,
        phase: Phase,
        programs: &mut [P],
        delivered: &[Vec<Envelope<P::Msg>>],
        done: &mut [bool],
        fault: Option<&dyn FaultInjector>,
    ) -> Result<RoundOutput<P::Msg>, NetError> {
        let n = cfg.n;
        let rules = round_rules(cfg, round, fault);
        let mut links = LinkUse::new(n);
        let mut counters = Counters::new();
        let mut transcript = Vec::new();
        let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        let mut faults = Vec::new();
        let mut deferred = Vec::new();
        // Pre-fault batches, tracked only under an injector (without one
        // the driver reconstructs identical batches from the inboxes).
        let mut batches: Option<BTreeMap<(u32, u32), (u32, u64)>> = fault.map(|_| BTreeMap::new());

        let t0 = Instant::now();
        for (node, program) in programs.iter_mut().enumerate() {
            if let Some(inj) = fault {
                if inj.crashed(round, node) {
                    // Fail-stop: no compute, no sends, inbox discarded.
                    // Marked done so the driver's termination check can
                    // still converge.
                    done[node] = true;
                    continue;
                }
            }
            let (staged, error, node_done) = run_node(
                program,
                node,
                cfg,
                rules,
                &mut links,
                round,
                phase,
                &delivered[node],
            );
            if let Some(e) = error {
                return Err(e);
            }
            if phase == Phase::Round {
                done[node] = node_done;
            }
            meter(&staged, cfg, round, &mut counters, &mut transcript);
            if let Some(b) = batches.as_mut() {
                for env in &staged {
                    let slot = b.entry((env.src as u32, env.dst as u32)).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += env.msg.words().max(1);
                }
            }
            if let Some(inj) = fault {
                let outcome = apply_faults(inj, round, staged);
                for env in outcome.deliver {
                    inboxes[env.dst].push(env);
                }
                deferred.extend(outcome.deferred);
                faults.extend(outcome.records);
            } else {
                // Senders run in ID order and stage in send order, so
                // pushing here yields (src, send-index)-sorted inboxes by
                // construction.
                for env in staged {
                    inboxes[env.dst].push(env);
                }
            }
        }

        Ok(RoundOutput {
            inboxes,
            cost: counters.total(),
            transcript,
            worker_spans: vec![SpanTiming {
                worker: 0,
                node_lo: 0,
                node_hi: n as u32,
                nanos: t0.elapsed().as_nanos() as u64,
            }],
            faults,
            deferred,
            batches: batches.map(|b| b.into_iter().collect()),
        })
    }
}

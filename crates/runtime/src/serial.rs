//! The serial reference backend.
//!
//! Executes nodes in ID order on the calling thread, exactly like
//! [`cc_net::CliqueNet::step`]: same send validation, same
//! abort-on-first-violation behavior, same inbox normalization. This is
//! the semantic baseline the parallel backend is tested against — and the
//! faster choice when `n · per-node-work` is small enough that thread
//! fan-out costs more than it saves.

use crate::backend::{meter, run_node, Backend, Phase, Program, RoundOutput};
use cc_net::budget::LinkUse;
use cc_net::{Counters, Envelope, NetConfig, NetError};
use cc_trace::SpanTiming;
use std::time::Instant;

/// Single-threaded engine; the reference implementation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialBackend;

impl Backend for SerialBackend {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute<P: Program>(
        &mut self,
        cfg: &NetConfig,
        round: u64,
        phase: Phase,
        programs: &mut [P],
        delivered: &[Vec<Envelope<P::Msg>>],
        done: &mut [bool],
    ) -> Result<RoundOutput<P::Msg>, NetError> {
        let n = cfg.n;
        let mut links = LinkUse::new(n);
        let mut counters = Counters::new();
        let mut transcript = Vec::new();
        let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();

        let t0 = Instant::now();
        for (node, program) in programs.iter_mut().enumerate() {
            let (staged, error, node_done) = run_node(
                program,
                node,
                cfg,
                &mut links,
                round,
                phase,
                &delivered[node],
            );
            if let Some(e) = error {
                return Err(e);
            }
            if phase == Phase::Round {
                done[node] = node_done;
            }
            meter(&staged, cfg, round, &mut counters, &mut transcript);
            // Senders run in ID order and stage in send order, so pushing
            // here yields (src, send-index)-sorted inboxes by construction.
            for env in staged {
                inboxes[env.dst].push(env);
            }
        }

        Ok(RoundOutput {
            inboxes,
            cost: counters.total(),
            transcript,
            worker_spans: vec![SpanTiming {
                worker: 0,
                node_lo: 0,
                node_hi: n as u32,
                nanos: t0.elapsed().as_nanos() as u64,
            }],
        })
    }
}

//! The serial reference backend.
//!
//! Executes nodes in ID order on the calling thread, exactly like
//! [`cc_net::CliqueNet::step`]: same send validation, same
//! abort-on-first-violation behavior, same inbox normalization, same
//! fault interposition. This is the semantic baseline the parallel
//! backend is tested against — and the faster choice when
//! `n · per-node-work` is small enough that thread fan-out costs more
//! than it saves.
//!
//! Like the direct simulator, the fault-free path is allocation-free in
//! steady state: the next-round inboxes land in the driver's pooled
//! buffer, and one staging buffer is drained and reused across all `n`
//! nodes of a round.

use crate::backend::{meter, round_rules, run_node, Backend, Phase, Program, RoundOutput};
use cc_net::budget::LinkUse;
use cc_net::fault::{apply_faults, FaultInjector};
use cc_net::{Counters, Envelope, NetConfig, NetError, RoundBatches, Wire};
use cc_trace::SpanTiming;
use std::time::Instant;

/// Single-threaded engine; the reference implementation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialBackend;

impl Backend for SerialBackend {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute<P: Program>(
        &mut self,
        cfg: &NetConfig,
        round: u64,
        phase: Phase,
        programs: &mut [P],
        delivered: &[Vec<Envelope<P::Msg>>],
        inboxes: &mut [Vec<Envelope<P::Msg>>],
        done: &mut [bool],
        fault: Option<&dyn FaultInjector>,
    ) -> Result<RoundOutput<P::Msg>, NetError> {
        let n = cfg.n;
        debug_assert_eq!(inboxes.len(), n, "driver provides one buffer per node");
        debug_assert!(inboxes.iter().all(Vec::is_empty), "buffers arrive drained");
        let rules = round_rules(cfg, round, fault);
        let mut links = LinkUse::new(n);
        let mut counters = Counters::new();
        let mut transcript = Vec::new();
        let mut faults = Vec::new();
        let mut deferred = Vec::new();
        // Reused staging buffer for the fault-free path (the fault path
        // hands each node's staged sends to `apply_faults` by value, so
        // it re-allocates; chaos runs are correctness harnesses, not the
        // hot path).
        let mut staged_buf: Vec<Envelope<P::Msg>> = Vec::new();
        // Pre-fault batches, tracked only under an injector (without one
        // the driver reconstructs identical batches from the inboxes).
        let mut batches: Option<RoundBatches> = fault.map(|_| {
            let mut b = RoundBatches::new();
            b.begin_round(n);
            b
        });

        let t0 = Instant::now();
        for (node, program) in programs.iter_mut().enumerate() {
            if let Some(inj) = fault {
                if inj.crashed(round, node) {
                    // Fail-stop: no compute, no sends, inbox discarded.
                    // Marked done so the driver's termination check can
                    // still converge.
                    done[node] = true;
                    continue;
                }
            }
            let (mut staged, error, node_done) = run_node(
                program,
                node,
                cfg,
                rules,
                &mut links,
                round,
                phase,
                &delivered[node],
                std::mem::take(&mut staged_buf),
            );
            if let Some(e) = error {
                return Err(e);
            }
            if phase == Phase::Round {
                done[node] = node_done;
            }
            meter(&staged, cfg, round, &mut counters, &mut transcript);
            if let Some(b) = batches.as_mut() {
                for env in &staged {
                    b.add(env.dst as u32, env.msg.words().max(1));
                }
                b.flush_sender(node as u32);
            }
            if let Some(inj) = fault {
                let outcome = apply_faults(inj, round, staged);
                for env in outcome.deliver {
                    inboxes[env.dst].push(env);
                }
                deferred.extend(outcome.deferred);
                faults.extend(outcome.records);
            } else {
                // Senders run in ID order and stage in send order, so
                // pushing here yields (src, send-index)-sorted inboxes by
                // construction.
                for env in staged.drain(..) {
                    inboxes[env.dst].push(env);
                }
                staged_buf = staged;
            }
        }

        Ok(RoundOutput {
            cost: counters.total(),
            transcript,
            worker_spans: vec![SpanTiming {
                worker: 0,
                node_lo: 0,
                node_hi: n as u32,
                nanos: t0.elapsed().as_nanos() as u64,
            }],
            faults,
            deferred,
            batches: batches.map(|mut b| b.take_entries()),
        })
    }
}

//! The parallel backend: fan-out across a thread pool, lock-free
//! deterministic exchange, sharded cost counters.
//!
//! One round is two barriers:
//!
//! 1. **Compute** — nodes are split into contiguous ID chunks, one per
//!    worker. Each worker runs its nodes' callbacks with a *private*
//!    [`LinkUse`] ledger (budgets are per-sender, so no sharing is
//!    needed), stages outgoing envelopes per node, and meters into a
//!    *private* [`Counters`] shard. No lock is taken anywhere.
//! 2. **Exchange** — workers are re-assigned contiguous *destination*
//!    ranges — disjoint slices of the driver's pooled inbox buffer. Each
//!    scans the staged outboxes of all senders in ID order and copies out
//!    the envelopes addressed to its range, so every inbox comes out in
//!    `(src, send-index)` order by construction — thread arrival order
//!    never matters. Counter shards and transcript chunks fold in worker
//!    (= ID) order at the barrier.
//!
//! Violations abort a worker's chunk at the first offending node (the
//! serial engine's behavior within a chunk), and the lowest-ID offender's
//! error is reported — the same error the serial engine would return,
//! because a node's behavior in a round cannot depend on higher-ID nodes'
//! sends of the *same* round.

use crate::backend::{meter, round_rules, run_node, Backend, Phase, Program, RoundOutput};
use crate::serial::SerialBackend;
use cc_net::budget::LinkUse;
use cc_net::fault::{apply_faults, FaultInjector, FaultRecord};
use cc_net::{Cost, Counters, Envelope, NetConfig, NetError, RoundBatches, Wire};
use cc_trace::SpanTiming;
use std::time::Instant;

/// Multi-threaded engine; observationally identical to
/// [`SerialBackend`](crate::SerialBackend).
#[derive(Clone, Copy, Debug)]
pub struct ParallelBackend {
    threads: usize,
}

impl Default for ParallelBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelBackend {
    /// An engine using all available hardware parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::with_threads(threads)
    }

    /// An engine with an explicit worker count (`threads ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "a backend needs at least one worker");
        ParallelBackend { threads }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// What one compute-phase worker hands back at the barrier.
struct ComputeShard<M> {
    /// Staged outbox per node of the chunk, in node order. Post-fault
    /// when an injector is active (the exchange phase distributes what
    /// is actually delivered).
    staged: Vec<Vec<Envelope<M>>>,
    cost: Cost,
    transcript: Vec<(u64, u32, u32)>,
    /// First violation in the chunk, with the offending node's ID.
    error: Option<(usize, NetError)>,
    /// Wall-clock span of this worker's compute phase.
    span: SpanTiming,
    /// Faults injected in this chunk, in `(node, send-index)` order.
    faults: Vec<FaultRecord>,
    /// Fault-deferred envelopes from this chunk.
    deferred: Vec<(u64, Envelope<M>)>,
    /// Pre-fault batch entries for this chunk, `(src, dst)`-sorted
    /// (`Some` iff injecting). Senders of a chunk are contiguous, so
    /// concatenating shard entries in worker order is globally sorted.
    batches: Option<Vec<cc_net::BatchEntry>>,
}

impl Backend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn execute<P: Program>(
        &mut self,
        cfg: &NetConfig,
        round: u64,
        phase: Phase,
        programs: &mut [P],
        delivered: &[Vec<Envelope<P::Msg>>],
        inboxes: &mut [Vec<Envelope<P::Msg>>],
        done: &mut [bool],
        fault: Option<&dyn FaultInjector>,
    ) -> Result<RoundOutput<P::Msg>, NetError> {
        let n = cfg.n;
        let workers = self.threads.min(n);
        if workers <= 1 {
            // One worker is the serial engine; skip the fan-out cost.
            return SerialBackend
                .execute(cfg, round, phase, programs, delivered, inboxes, done, fault);
        }
        debug_assert_eq!(inboxes.len(), n, "driver provides one buffer per node");
        let chunk = n.div_ceil(workers);
        let rules = round_rules(cfg, round, fault);

        // ---- Barrier 1: compute. ----
        let shards: Vec<ComputeShard<P::Msg>> = std::thread::scope(|s| {
            let handles: Vec<_> = programs
                .chunks_mut(chunk)
                .zip(done.chunks_mut(chunk))
                .zip(delivered.chunks(chunk))
                .enumerate()
                .map(|(w, ((progs, done_chunk), del_chunk))| {
                    let base = w * chunk;
                    s.spawn(move || {
                        let t0 = Instant::now();
                        let mut links = LinkUse::new(n);
                        let mut counters = Counters::new();
                        let mut transcript = Vec::new();
                        let mut staged_per_node = Vec::with_capacity(progs.len());
                        let chunk_len = progs.len();
                        let mut error = None;
                        let mut faults = Vec::new();
                        let mut deferred = Vec::new();
                        let mut batches: Option<RoundBatches> = fault.map(|_| {
                            let mut b = RoundBatches::new();
                            b.begin_round(n);
                            b
                        });
                        for (i, program) in progs.iter_mut().enumerate() {
                            let node = base + i;
                            if let Some(inj) = fault {
                                if inj.crashed(round, node) {
                                    // Fail-stop (see SerialBackend): no
                                    // compute, no sends, marked done.
                                    done_chunk[i] = true;
                                    continue;
                                }
                            }
                            let (staged, err, node_done) = run_node(
                                program,
                                node,
                                cfg,
                                rules,
                                &mut links,
                                round,
                                phase,
                                &del_chunk[i],
                                Vec::new(),
                            );
                            if let Some(e) = err {
                                error = Some((node, e));
                                break;
                            }
                            if phase == Phase::Round {
                                done_chunk[i] = node_done;
                            }
                            meter(&staged, cfg, round, &mut counters, &mut transcript);
                            if let Some(b) = batches.as_mut() {
                                for env in &staged {
                                    b.add(env.dst as u32, env.msg.words().max(1));
                                }
                                b.flush_sender(node as u32);
                            }
                            if let Some(inj) = fault {
                                let outcome = apply_faults(inj, round, staged);
                                staged_per_node.push(outcome.deliver);
                                deferred.extend(outcome.deferred);
                                faults.extend(outcome.records);
                            } else {
                                staged_per_node.push(staged);
                            }
                        }
                        ComputeShard {
                            staged: staged_per_node,
                            cost: counters.total(),
                            transcript,
                            error,
                            span: SpanTiming {
                                worker: w as u32,
                                node_lo: base as u32,
                                node_hi: (base + chunk_len) as u32,
                                nanos: t0.elapsed().as_nanos() as u64,
                            },
                            faults,
                            deferred,
                            batches: batches.map(|mut b| b.take_entries()),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });

        // Fold shards in worker (= node) order: lowest offender wins, cost
        // addition is commutative so totals are exact, transcript chunks
        // concatenate into sender-ID order, and (src, dst)-sorted batch
        // chunks concatenate into globally sorted order (disjoint,
        // ascending sender ranges).
        if let Some((_, e)) = shards
            .iter()
            .filter_map(|sh| sh.error.as_ref())
            .min_by_key(|(node, _)| *node)
        {
            return Err(e.clone());
        }
        let mut cost = Cost::default();
        let mut transcript = Vec::new();
        let mut staged_all: Vec<Vec<Envelope<P::Msg>>> = Vec::with_capacity(n);
        let mut worker_spans = Vec::with_capacity(shards.len());
        let mut faults = Vec::new();
        let mut deferred = Vec::new();
        let mut batches: Option<Vec<cc_net::BatchEntry>> = fault.map(|_| Vec::new());
        for shard in shards {
            cost += shard.cost;
            transcript.extend(shard.transcript);
            staged_all.extend(shard.staged);
            worker_spans.push(shard.span);
            faults.extend(shard.faults);
            deferred.extend(shard.deferred);
            if let (Some(acc), Some(part)) = (batches.as_mut(), shard.batches) {
                acc.extend(part);
            }
        }

        // ---- Barrier 2: exchange. ----
        // Workers own disjoint destination ranges — disjoint `chunks_mut`
        // slices of the pooled inbox buffer — and pull from the shared
        // staged outboxes: no queue, no lock, and the (src, send-index)
        // scan order *is* the normalized inbox order.
        let staged_ref = &staged_all;
        std::thread::scope(|s| {
            let handles: Vec<_> = inboxes
                .chunks_mut(chunk)
                .enumerate()
                .map(|(w, part)| {
                    let lo = w * chunk;
                    s.spawn(move || {
                        for src_staged in staged_ref {
                            for env in src_staged {
                                if (lo..lo + part.len()).contains(&env.dst) {
                                    part[env.dst - lo].push(env.clone());
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            }
        });

        Ok(RoundOutput {
            cost,
            transcript,
            worker_spans,
            faults,
            deferred,
            batches,
        })
    }
}

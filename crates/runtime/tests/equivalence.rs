//! Backend equivalence: the serial simulator, the serial runtime backend,
//! and the parallel runtime backend must produce identical program states
//! and identical cost totals on the same inputs.

use cc_net::program::examples::FloodEcho;
use cc_net::program::run_program;
use cc_net::{CliqueNet, Cost, NetConfig};
use cc_runtime::{adapt_all, Runtime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn flood_programs(adj: &[Vec<usize>], root: usize) -> Vec<FloodEcho> {
    adj.iter()
        .enumerate()
        .map(|(v, nb)| FloodEcho::new(nb.clone(), v == root))
        .collect()
}

/// `(parent, subtree, reached)` per node — FloodEcho's full observable
/// output.
fn outputs(programs: &[FloodEcho]) -> Vec<(Option<usize>, u64, bool)> {
    programs
        .iter()
        .map(|p| (p.parent, p.subtree, p.reached()))
        .collect()
}

fn random_adjacency(n: usize, edge_prob: f64, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); n];
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(edge_prob) {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
    }
    adj
}

/// Runs FloodEcho on all three engines and asserts identical outputs and
/// identical cost.
fn assert_three_way(adj: &[Vec<usize>], root: usize, max_rounds: u64) {
    let n = adj.len();
    let cfg = NetConfig::kt1(n);

    let mut net: CliqueNet<Vec<u64>> = CliqueNet::new(cfg.clone());
    let reference = run_program(&mut net, flood_programs(adj, root), max_rounds).unwrap();
    let ref_cost = net.cost();

    let mut serial = Runtime::serial(cfg.clone());
    let s = serial
        .run(adapt_all(flood_programs(adj, root)), max_rounds)
        .unwrap();

    let mut parallel = Runtime::parallel_with_threads(cfg, 4);
    let p = parallel
        .run(adapt_all(flood_programs(adj, root)), max_rounds)
        .unwrap();

    let want = outputs(&reference);
    let s_out: Vec<FloodEcho> = s.into_iter().map(|a| a.0).collect();
    let p_out: Vec<FloodEcho> = p.into_iter().map(|a| a.0).collect();
    assert_eq!(outputs(&s_out), want, "serial backend diverged");
    assert_eq!(outputs(&p_out), want, "parallel backend diverged");
    assert_eq!(serial.cost(), ref_cost, "serial cost diverged");
    assert_eq!(parallel.cost(), ref_cost, "parallel cost diverged");
}

#[test]
fn flood_echo_path_with_isolated_node() {
    let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2], vec![]];
    assert_three_way(&adj, 0, 100);
}

#[test]
fn flood_echo_ring() {
    let n = 16;
    let mut adj = vec![Vec::new(); n];
    for v in 0..n {
        adj[v].push((v + 1) % n);
        adj[(v + 1) % n].push(v);
    }
    assert_three_way(&adj, 5, 100);
}

#[test]
fn flood_echo_random_graphs() {
    for (seed, prob) in [(1u64, 0.05), (2, 0.15), (3, 0.4)] {
        let adj = random_adjacency(24, prob, seed);
        assert_three_way(&adj, 0, 200);
    }
}

#[test]
fn flood_echo_worker_count_is_invisible() {
    let adj = random_adjacency(20, 0.2, 99);
    let cfg = NetConfig::kt1(adj.len());

    let run_with = |threads: usize| -> (Vec<(Option<usize>, u64, bool)>, Cost) {
        let mut rt = Runtime::parallel_with_threads(cfg.clone(), threads);
        let out = rt.run(adapt_all(flood_programs(&adj, 0)), 200).unwrap();
        let inner: Vec<FloodEcho> = out.into_iter().map(|a| a.0).collect();
        (outputs(&inner), rt.cost())
    };

    let base = run_with(1);
    for threads in [2, 3, 7, 32] {
        assert_eq!(run_with(threads), base, "threads={threads} diverged");
    }
}

#[test]
fn transcripts_match_between_backends() {
    let adj = random_adjacency(12, 0.3, 7);
    let cfg = NetConfig::kt1(adj.len()).with_transcript();

    let mut serial = Runtime::serial(cfg.clone());
    serial.run(adapt_all(flood_programs(&adj, 0)), 200).unwrap();

    let mut parallel = Runtime::parallel_with_threads(cfg, 5);
    parallel
        .run(adapt_all(flood_programs(&adj, 0)), 200)
        .unwrap();

    assert!(!serial.transcript().is_empty());
    assert_eq!(serial.transcript(), parallel.transcript());
}

#[test]
fn model_event_streams_match_between_backends() {
    // The driver emits all model events centrally from RoundOutput, so the
    // two engines must produce byte-identical model streams — rounds,
    // per-link message batches, totals. (Timing events — WorkerSpan — are
    // backend-shaped by design and excluded by `is_model`.)
    let adj = random_adjacency(18, 0.25, 11);
    let cfg = NetConfig::kt1(adj.len());

    let rec_s = cc_trace::RecordingTracer::new();
    let mut serial = Runtime::serial(cfg.clone());
    serial.set_tracer(Box::new(rec_s.clone()));
    serial.run(adapt_all(flood_programs(&adj, 0)), 200).unwrap();

    let rec_p = cc_trace::RecordingTracer::new();
    let mut parallel = Runtime::parallel_with_threads(cfg, 5);
    parallel.set_tracer(Box::new(rec_p.clone()));
    parallel
        .run(adapt_all(flood_programs(&adj, 0)), 200)
        .unwrap();

    let s_model = rec_s.model_events();
    let p_model = rec_p.model_events();
    assert!(!s_model.is_empty());
    assert_eq!(s_model, p_model, "model-event streams diverged");

    // The event stream also reproduces the metered totals exactly.
    let summed: u64 = s_model
        .iter()
        .filter_map(|e| match e {
            cc_trace::Event::RoundEnd { messages, .. } => Some(*messages),
            _ => None,
        })
        .sum();
    assert_eq!(summed, serial.cost().messages);
    assert_eq!(serial.cost(), parallel.cost());

    // The parallel engine reported spans from more than one worker, and the
    // serial engine exactly one per round — the only allowed divergence.
    let workers = |rec: &cc_trace::RecordingTracer| {
        let mut ws: Vec<u32> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                cc_trace::Event::WorkerSpan { worker, .. } => Some(*worker),
                _ => None,
            })
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    };
    assert_eq!(workers(&rec_s), vec![0]);
    assert!(workers(&rec_p).len() > 1);
}

#[test]
fn graph_helper_agrees_with_component_count() {
    // Cross-check against cc-graph: the root's subtree size equals its
    // component's size.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = cc_graph::generators::gnp(30, 0.08, &mut rng);
    let mut adj = vec![Vec::new(); 30];
    for e in g.edges() {
        adj[e.u as usize].push(e.v as usize);
        adj[e.v as usize].push(e.u as usize);
    }
    let labels = cc_graph::connectivity::component_labels(&g);
    let component_size = labels.iter().filter(|&&l| l == labels[0]).count() as u64;

    let mut rt = Runtime::parallel_with_threads(NetConfig::kt1(30), 4);
    let out = rt.run(adapt_all(flood_programs(&adj, 0)), 400).unwrap();
    assert_eq!(out[0].0.subtree, component_size);
}

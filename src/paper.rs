//! # Paper map: section-by-section guide to the reproduction
//!
//! A reading companion: for each part of Hegeman, Pandurangan, Pemmaraju,
//! Sardeshmukh & Scquizzato (PODC 2015), where its implementation lives
//! and which experiment regenerates its numbers (IDs refer to
//! EXPERIMENTS.md / `cargo run -p cc-bench --bin tables`).
//!
//! ## §1.2 The Model
//!
//! | Paper | Code |
//! |---|---|
//! | `n` machines, complete network, synchronous rounds | [`cc_net::CliqueNet::step`] |
//! | `O(log n)` bits per link per round | [`cc_net::NetConfig::link_words`] × [`cc_net::NetConfig::word_bits`], enforced by [`cc_net::Outbox::send`] |
//! | KT0 / KT1 initial knowledge | [`cc_net::Knowledge`], hidden ports in [`cc_net::PortMap`], bootstrap in [`cc_route::kt0_bootstrap`] |
//! | time / message complexity | [`cc_net::Cost`] (`rounds` / `messages`), scoped via [`cc_net::Counters`] |
//! | input graph embedded in the clique | algorithms take [`cc_graph::Graph`]/[`cc_graph::WGraph`] with `g.n() == net.n()` |
//!
//! ## §2.1 Linear Sketches of a Graph (Theorem 1)
//!
//! | Paper | Code |
//! |---|---|
//! | signed incidence vectors `a_v` over `C(n,2)` | [`cc_sketch::GraphSketchSpace::sketch_neighborhood`], indexing via [`cc_graph::edge_index`] |
//! | `Θ(log n)`-wise hash `h`, pairwise `g_r` | [`cc_sketch::KWiseHash`] (random polynomials over `F_{2^61−1}`) |
//! | Cormode–Firmani ℓ0 sampler, `O(log⁴ n)` bits | [`cc_sketch::SketchSpace`] / [`cc_sketch::SketchParams`] |
//! | linearity / cancellation | [`cc_sketch::Sketch::add_assign_sketch`] |
//! | `Θ(log² n)` shared random bits in `O(1)` rounds | [`cc_route::shared_seed`] |
//! | experiments | E3 (sizes, success rate), E13 (shape ablation) |
//!
//! ## §2.2 Using Linear Sketches to Solve GC (Theorem 4, Lemma 3)
//!
//! | Paper | Code |
//! |---|---|
//! | Algorithm 1 REDUCECOMPONENTS | [`cc_core::reduce_components::reduce_components`] |
//! | CC-MST (Lotker et al., Theorem 2) | [`cc_lotker::cc_mst`]; merge logic in [`cc_lotker::controlled_boruvka`] (see DESIGN.md on Theorem 2(iii)) |
//! | BUILDCOMPONENTGRAPH | [`cc_core::build_component_graph`] |
//! | Algorithm 2 SKETCHANDSPAN | [`cc_core::gc::sketch_and_span`] |
//! | Lenzen's routing (black box) | [`cc_route::route`] (the "Lenzen contract"; deterministic variant [`cc_route::route_deterministic`]) |
//! | the full GC algorithm | [`cc_core::gc::run`] |
//! | Remark 5 (bipartiteness, k-edge-connectivity) | [`cc_core::bipartiteness::bipartiteness`], [`cc_core::kecc::k_edge_connectivity`] |
//! | experiments | E1 (rounds), E4 (Lemma 3), E9 (bandwidth "furthermore"), E10 (Remark 5) |
//!
//! ## §2.3 Using Linear Sketches to Solve MST (Theorem 7, Lemma 6)
//!
//! | Paper | Code |
//! |---|---|
//! | KKT sampling + F-light filter (Definition 1, Lemma 6) | [`cc_kkt::sample_edges`], [`cc_kkt::FLightClassifier`] |
//! | Algorithm 4 SQ-MST (sort, groups, guardians) | [`cc_core::sq_mst::sq_mst`]; sorting via [`cc_route::distributed_sort`] |
//! | Algorithm 3 EXACT-MST | [`cc_core::exact_mst::exact_mst`] |
//! | experiments | E2 (rounds), E5 (Lemma 6), E9 (bandwidth) |
//!
//! ## §3 Message Lower Bounds in KT0 (Theorems 8–9)
//!
//! | Paper | Code |
//! |---|---|
//! | the graph `G = G_U ∪ G_V` and distribution `H` | [`cc_lb::hard_instance`], [`cc_lb::HardInstance::sample`] |
//! | the swap family `S_G` | [`cc_lb::Swap`], [`cc_lb::HardInstance::apply_swap`] |
//! | `Ω(m)` edge-disjoint squares | [`cc_lb::edge_disjoint_squares`] |
//! | the "execution proceeds identically" step | [`cc_lb::port_view()`] / [`cc_lb::views_identical_after_swap`] — executable indistinguishability |
//! | the adversary | [`cc_lb::find_untouched_square`] |
//! | experiments | E6 (squares + message audit), E6b (transcript audit), E6c (fooling probability) |
//!
//! ## §4 Message Complexity in KT1 (Theorem 10, Corollaries 11–12, Theorem 13)
//!
//! | Paper | Code |
//! |---|---|
//! | the `O(n)`-bit time-encoding protocol | [`cc_core::time_encoding::time_encoding_gc`] |
//! | Figure 1 / the family `G_{i,j}` | [`cc_lb::g_ij`] |
//! | partitions `P_{i,j}` and crossings | [`cc_lb::partition_pair`], [`cc_lb::crossed_partitions`] |
//! | a concrete `GC(u₀,v₀)` protocol to audit | [`cc_lb::run_report_protocol`] |
//! | §4.2 MST in `O(polylog n)` rounds / `O(n polylog n)` messages | [`cc_core::kt1_mst::kt1_mst`] |
//! | experiments | E7 (crossings), E8 (Theorem 13), E11 (time encoding), F1 (Figure 1) |
//!
//! ## §5 Conclusions (open questions)
//!
//! "Is it possible to design sub-logarithmic GC or MST algorithms that use
//! `O(n polylog n)` messages?" — the message half is packaged as
//! [`cc_core::kt1_gc::kt1_gc`] (experiment E12); the sub-logarithmic-round
//! half remains open, here as in the literature.

// This module is documentation-only.

//! # congested-clique
//!
//! A full reproduction of Hegeman, Pandurangan, Pemmaraju, Sardeshmukh and
//! Scquizzato, *Toward Optimal Bounds in the Congested Clique: Graph
//! Connectivity and MST* (PODC 2015).
//!
//! This umbrella crate re-exports the workspace so downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — graph substrate and sequential reference algorithms.
//! * [`model`] — the communication model as data: bandwidth budgets,
//!   unicast vs broadcast-only links, node-to-machine mappings, and the
//!   k-machine round-accounting rule.
//! * [`net`] — the Congested Clique simulator (rounds, bandwidth, KT0/KT1,
//!   cost metering).
//! * [`sketch`] — linear graph sketches and ℓ0-sampling (Section 2.1).
//! * [`route`] — clique collectives: routing, sorting, broadcast.
//! * [`runtime`] — serial/parallel execution engines for node programs.
//! * [`lotker`] — the Lotker et al. `O(log log n)` CC-MST used as the
//!   paper's preprocessing step.
//! * [`kkt`] — Karger–Klein–Tarjan sampling and F-light classification.
//! * [`core`] — the paper's algorithms: `O(log log log n)` connectivity and
//!   MST, the KT1 low-message MST, bipartiteness, k-edge-connectivity.
//! * [`lb`] — the Section 3 / Section 4 lower-bound constructions and
//!   adversary demonstrators.
//! * [`trace`] — structured tracing, metrics, and the versioned
//!   `RunArtifact` JSON format experiments emit.
//! * [`profile`] — phase-tree profiles, perf baselines with regression
//!   gating, and model-event trace diffing.
//! * [`serve`] — the async job service: bounded queue, worker pool,
//!   result caching, streamed artifacts (`serve` binary, DESIGN.md §14).
//! * [`lens`] — the communication observatory: round-resolved link
//!   utilization, budget headroom, phase attribution, and k-machine
//!   pair skew, folded from the trace event stream (DESIGN.md §17).
//!
//! # Quickstart
//!
//! ```
//! use congested_clique::graph::generators;
//! use congested_clique::core::gc;
//! use congested_clique::net::NetConfig;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let g = generators::random_connected_graph(64, 0.08, &mut rng);
//! let run = gc::run(&g, &NetConfig::kt1(64).with_seed(9)).unwrap();
//! assert!(run.output.connected);
//! println!("GC finished in {} rounds", run.cost.rounds);
//! ```

#![forbid(unsafe_code)]

pub mod paper;

pub use cc_core as core;
pub use cc_graph as graph;
pub use cc_kkt as kkt;
pub use cc_lb as lb;
pub use cc_lens as lens;
pub use cc_lotker as lotker;
pub use cc_model as model;
pub use cc_net as net;
pub use cc_profile as profile;
pub use cc_route as route;
pub use cc_runtime as runtime;
pub use cc_serve as serve;
pub use cc_sketch as sketch;
pub use cc_trace as trace;

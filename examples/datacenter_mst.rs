//! Scenario: minimum-cost spanning backbone of a fully meshed data-center
//! fabric — the native input of EXACT-MST (Algorithm 3 / Theorem 7): an
//! edge-weighted clique where link costs mix distance and load.
//!
//! The example runs the paper-default pipeline and a phase-limited variant
//! that forces the KKT-sampling + SQ-MST machinery, verifies both against
//! Kruskal, and prints the per-stage cost breakdown.
//!
//! ```text
//! cargo run --release --example datacenter_mst
//! ```

use congested_clique::core::{exact_mst, ExactMstConfig};
use congested_clique::graph::{mst, WGraph};
use congested_clique::net::NetConfig;
use congested_clique::route::Net;

/// Synthetic fabric: racks on a 2-D floor grid; link cost = Manhattan
/// distance × congestion factor (deterministic, so runs are reproducible).
fn fabric(n: usize) -> WGraph {
    let side = (n as f64).sqrt().ceil() as usize;
    let mut g = WGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let (ax, ay) = (a % side, a / side);
            let (bx, by) = (b % side, b / side);
            let dist = ax.abs_diff(bx) + ay.abs_diff(by);
            let congestion = 1 + (a * 7 + b * 13) % 5;
            g.add_edge(a, b, (dist * congestion + 1) as u64);
        }
    }
    g
}

fn main() {
    let n = 48;
    let g = fabric(n);
    println!("fabric: n = {n} racks, {} candidate links", g.m());
    let reference = mst::kruskal(&g);
    let ref_cost = WGraph::total_weight(&reference);
    println!("reference backbone cost (Kruskal): {ref_cost}");

    // Paper-default run.
    let mut net = Net::new(NetConfig::kt1(n).with_seed(1));
    let run = exact_mst(&mut net, &g, &ExactMstConfig::default()).expect("simulation failed");
    println!(
        "EXACT-MST (default {} Lotker phases): cost {}, {}",
        run.phases,
        WGraph::total_weight(&run.mst),
        run.cost
    );
    assert_eq!(WGraph::total_weight(&run.mst), ref_cost);
    for (name, cost) in net.counters().scopes() {
        println!("  {name:<28} {cost}");
    }

    // Force the sampling pipeline with a single preprocessing phase.
    let forced = ExactMstConfig {
        phases: Some(1),
        families: Some(10),
        ..Default::default()
    };
    let mut net2 = Net::new(NetConfig::kt1(n).with_seed(2));
    let run2 = exact_mst(&mut net2, &g, &forced).expect("simulation failed");
    println!(
        "EXACT-MST (1 phase, KKT + SQ-MST): cost {}, {}",
        WGraph::total_weight(&run2.mst),
        run2.cost
    );
    assert_eq!(WGraph::total_weight(&run2.mst), ref_cost);

    println!("backbone verified optimal on both paths ✓");
}

//! Scenario: the same protocol on both execution engines. A flood/echo
//! spanning-tree construction and the sketch-based connectivity phase run
//! on the serial reference backend and the parallel engine; the model's
//! determinism contract says the outputs and metered costs must be
//! identical, so the example checks and prints both.
//!
//! ```text
//! cargo run --release --example runtime_backends
//! cargo run --release --example runtime_backends -- cap   # round-cap error path
//! ```

use congested_clique::core::run_connectivity;
use congested_clique::graph::generators;
use congested_clique::net::program::examples::FloodEcho;
use congested_clique::net::NetConfig;
use congested_clique::runtime::{adapt_all, Runtime};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn adjacency(n: usize, p: f64, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generators::gnp(n, p, &mut rng);
    let mut adj = vec![Vec::new(); n];
    for e in g.edges() {
        adj[e.u as usize].push(e.v as usize);
        adj[e.v as usize].push(e.u as usize);
    }
    adj
}

fn flood_programs(adj: &[Vec<usize>]) -> Vec<FloodEcho> {
    adj.iter()
        .enumerate()
        .map(|(v, nb)| FloodEcho::new(nb.clone(), v == 0))
        .collect()
}

fn main() {
    let n = 96;
    let adj = adjacency(n, 0.06, 11);
    let cfg = NetConfig::kt1(n).with_seed(7);

    if std::env::args().nth(1).as_deref() == Some("cap") {
        // Error-path demo: a cap far below what the flood needs must
        // surface as RoundCapExceeded, identically on both backends.
        let mut serial = Runtime::serial(cfg.clone());
        let mut parallel = Runtime::parallel(cfg);
        let s = serial.run(adapt_all(flood_programs(&adj)), 2).unwrap_err();
        let p = parallel
            .run(adapt_all(flood_programs(&adj)), 2)
            .unwrap_err();
        println!("serial   error: {s}");
        println!("parallel error: {p}");
        assert_eq!(s, p, "backends must fail identically");
        return;
    }

    // Flood/echo from node 0: every reached node reports its BFS parent
    // and subtree size back up the tree.
    let mut serial = Runtime::serial(cfg.clone());
    let out_s = serial.run(adapt_all(flood_programs(&adj)), 10_000).unwrap();
    let mut parallel = Runtime::parallel(cfg.clone());
    let out_p = parallel
        .run(adapt_all(flood_programs(&adj)), 10_000)
        .unwrap();

    let reached = out_s.iter().filter(|p| p.0.reached()).count();
    println!("flood/echo on G(n={n}, p=0.06): {reached}/{n} nodes reached");
    println!(
        "  serial   ({}): {:?}",
        serial.backend_name(),
        serial.cost()
    );
    println!(
        "  parallel ({}×{} threads): {:?}",
        parallel.backend_name(),
        parallel.backend().threads(),
        parallel.cost()
    );
    let same = out_s.iter().zip(&out_p).all(|(a, b)| {
        (a.0.parent, a.0.subtree, a.0.reached()) == (b.0.parent, b.0.subtree, b.0.reached())
    });
    assert!(same, "per-node outputs must be identical");
    assert_eq!(serial.cost(), parallel.cost(), "costs must be identical");
    println!("  outputs and costs identical: yes");

    // Sketch-based connectivity as a runtime program (cc-core port).
    let mut serial = Runtime::serial(cfg.clone());
    let gc_s = run_connectivity(&mut serial, &adj, None, 200_000).unwrap();
    let mut parallel = Runtime::parallel(cfg);
    let gc_p = run_connectivity(&mut parallel, &adj, None, 200_000).unwrap();
    println!(
        "sketch connectivity: {} components, connected = {}",
        gc_s.component_count, gc_s.connected
    );
    println!("  serial   cost: {:?}", serial.cost());
    println!("  parallel cost: {:?}", parallel.cost());
    assert_eq!(gc_s.labels, gc_p.labels, "labels must be identical");
    assert_eq!(serial.cost(), parallel.cost(), "costs must be identical");
    println!("  labels and costs identical: yes");
}

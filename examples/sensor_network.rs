//! Scenario: a battery-constrained sensor deployment where every message
//! costs energy — the setting that motivates the paper's *message*
//! complexity results. The Theorem 13 KT1 algorithm computes the MST with
//! `O(n polylog n)` messages, while the `O(log log log n)`-round
//! EXACT-MST burns `Θ(n²)`; this example measures both on the same
//! geometric-style graph.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use congested_clique::core::{exact_mst, kt1_mst, ExactMstConfig, Kt1MstConfig};
use congested_clique::graph::{mst, WGraph};
use congested_clique::net::NetConfig;
use congested_clique::route::Net;

/// Sensors on a ring with a few chords: sparse, connected, deterministic.
fn deployment(n: usize) -> WGraph {
    let mut g = WGraph::new(n);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n, ((v * 17 + 3) % 100 + 1) as u64);
        if v % 5 == 0 {
            g.add_edge(v, (v + n / 3) % n, ((v * 29 + 7) % 100 + 50) as u64);
        }
    }
    g
}

fn main() {
    for n in [32usize, 64, 128] {
        let g = deployment(n);
        let reference = mst::kruskal(&g);

        let mut net_low = Net::new(NetConfig::kt1(n).with_seed(1));
        let low = kt1_mst::kt1_mst(&mut net_low, &g, &Kt1MstConfig::default())
            .expect("simulation failed");
        assert!(low.complete);
        assert_eq!(low.mst, reference);

        let mut net_fast = Net::new(NetConfig::kt1(n).with_seed(1));
        let fast =
            exact_mst(&mut net_fast, &g, &ExactMstConfig::default()).expect("simulation failed");
        assert_eq!(fast.mst, reference);

        let lg = (n as f64).log2();
        println!("n = {n:>4}  (m = {})", g.m());
        println!(
            "  Theorem 13 (low-message): {:>9} messages  {:>7} rounds   [n·log⁵n = {:.0}]",
            low.cost.messages,
            low.cost.rounds,
            n as f64 * lg.powi(5)
        );
        println!(
            "  Theorem 7  (fast)       : {:>9} messages  {:>7} rounds   [n² = {}]",
            fast.cost.messages,
            fast.cost.rounds,
            n * n
        );
        println!(
            "  message ratio fast/low  : {:.2}×; round ratio low/fast: {:.2}×",
            fast.cost.messages as f64 / low.cost.messages as f64,
            low.cost.rounds as f64 / fast.cost.rounds as f64,
        );
        // Every sensor knows its incident backbone links (the paper's MST
        // output requirement).
        let incident_total: usize = low.incident.iter().map(Vec::len).sum();
        assert_eq!(incident_total, 2 * low.mst.len());
    }
    println!("both algorithms agree with Kruskal on every deployment ✓");
    println!(
        "note: at laptop-scale n the log⁵ n factor still dominates n, so the \
         low-message algorithm's absolute counts exceed Θ(n²); what the sweep \
         shows is the *growth*: its messages scale ~n·polylog (the fast/low \
         ratio rises with n toward the asymptotic crossover)."
    );
}

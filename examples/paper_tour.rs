//! A guided tour: one tiny instance of every result in the paper, in the
//! order the paper presents them. Each stop prints the claim, the run, and
//! the check. (The `paper` module of the crate docs is the map; this is
//! the ride.)
//!
//! ```text
//! cargo run --release --example paper_tour
//! ```

use congested_clique::core::{
    bipartiteness::bipartiteness, exact_mst, gc, kecc::k_edge_connectivity, kt1_mst,
    time_encoding::time_encoding_gc, ExactMstConfig, GcConfig, Kt1MstConfig,
};
use congested_clique::graph::{connectivity, generators, mst};
use congested_clique::lb;
use congested_clique::net::{NetConfig, PortMap};
use congested_clique::route::Net;
use congested_clique::sketch::{EdgeSample, GraphSketchSpace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

fn stop(title: &str) {
    println!("\n── {title} ──");
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2015); // the year of the paper

    stop("§2.1, Theorem 1 — linear sketches cancel internal edges");
    let space = GraphSketchSpace::new(4, 1);
    let mut comp = space.sketch_neighborhood(0, [1, 2]);
    comp.add_assign_sketch(&space.sketch_neighborhood(1, [0, 2]));
    comp.add_assign_sketch(&space.sketch_neighborhood(2, [0, 1, 3]));
    println!(
        "triangle {{0,1,2}} + cut edge {{2,3}} → sample: {:?}",
        space.sample_edge(&comp)
    );
    assert_eq!(space.sample_edge(&comp), EdgeSample::Edge(2, 3));

    stop("§2.2, Theorem 4 — GC in O(log log log n) rounds");
    let g = generators::random_connected_graph(64, 0.06, &mut rng);
    let run = gc::run(&g, &NetConfig::kt1(64).with_seed(1)).unwrap();
    println!(
        "n=64: connected={} in {} rounds ({} messages)",
        run.output.connected, run.cost.rounds, run.cost.messages
    );
    assert!(run.output.connected);

    stop("§2.3, Theorem 7 — EXACT-MST");
    let gw = generators::complete_wgraph(24, &mut rng);
    let mut net = Net::new(NetConfig::kt1(24).with_seed(2));
    let m = exact_mst(&mut net, &gw, &ExactMstConfig::default()).unwrap();
    println!(
        "24-clique MST: {} edges in {} rounds — matches Kruskal: {}",
        m.mst.len(),
        m.cost.rounds,
        m.mst == mst::kruskal(&gw)
    );
    assert_eq!(m.mst, mst::kruskal(&gw));

    stop("Remark 5 — bipartiteness & k-edge-connectivity");
    let bip = bipartiteness(
        &generators::cycle(12),
        &NetConfig::kt1(12).with_seed(3),
        &GcConfig::default(),
    )
    .unwrap();
    let kecc = k_edge_connectivity(
        &generators::cycle(12),
        2,
        &NetConfig::kt1(12).with_seed(4),
        &GcConfig::default(),
    )
    .unwrap();
    println!(
        "C12: bipartite={}, 2-edge-connected={}",
        bip.bipartite, kecc.k_edge_connected
    );
    assert!(bip.bipartite && kecc.k_edge_connected);

    stop("§3, Theorems 8–9 — the KT0 Ω(n²) adversary");
    let inst = lb::hard_instance(16, 48);
    let squares = lb::edge_disjoint_squares(&inst);
    let sq = &squares[0];
    let ports = PortMap::new(16, 5);
    let mut probes: HashSet<(usize, usize)> = (0..16)
        .flat_map(|a| ((a + 1)..16).map(move |b| (a, b)))
        .collect();
    for l in sq.links() {
        probes.remove(&l);
    }
    let (before, after) = lb::views_identical_after_swap(&inst, sq, &ports, &probes);
    println!(
        "{} edge-disjoint squares; silent-square port views identical: {} (yet one input is connected, the other is not)",
        squares.len(),
        before == after
    );
    assert_eq!(before, after);

    stop("§4, Theorem 10 / Figure 1 — the Ω(n) crossing structure");
    let i = 6;
    let r0 = lb::run_report_protocol(&lb::g_ij(i, 0), 1).unwrap();
    let r1 = lb::run_report_protocol(&lb::g_ij(i, i + 1), 1).unwrap();
    let crossed: HashSet<usize> = lb::crossed_partitions(i, &r0.transcript)
        .union(&lb::crossed_partitions(i, &r1.transcript))
        .copied()
        .collect();
    println!(
        "G_{{6,·}}: {}/{} partitions crossed over both runs",
        crossed.len(),
        i
    );
    assert_eq!(crossed.len(), i);

    stop("§4 opening — the O(n)-bit time-encoding protocol");
    let gte = generators::cycle(10);
    let mut tnet = Net::new(NetConfig::kt1(10).with_seed(6));
    let te = time_encoding_gc(&mut tnet, &gte).unwrap();
    println!(
        "{} messages, {} rounds (2^n = {})",
        te.cost.messages,
        te.cost.rounds,
        1 << 10
    );
    assert_eq!(te.cost.messages, 18);

    stop("§4.2, Theorem 13 — MST with O(n polylog n) messages");
    let gs = generators::random_connected_wgraph(32, 0.12, 1000, &mut rng);
    let mut knet = Net::new(NetConfig::kt1(32).with_seed(7));
    let k = kt1_mst(&mut knet, &gs, &Kt1MstConfig::default()).unwrap();
    println!(
        "n=32 sparse: MST in {} messages / {} rounds — matches Kruskal: {}",
        k.cost.messages,
        k.cost.rounds,
        k.mst == mst::kruskal(&gs)
    );
    assert_eq!(k.mst, mst::kruskal(&gs));

    // Sanity: the graph-side references agree everywhere we claimed.
    assert!(connectivity::is_connected(&g));
    println!("\ntour complete — every stop checked ✓");
}

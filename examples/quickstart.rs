//! Quickstart: run the paper's `O(log log log n)` connectivity algorithm
//! (Theorem 4) on a random graph and inspect what it cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use congested_clique::core::{gc, GcConfig};
use congested_clique::graph::{connectivity, generators};
use congested_clique::net::NetConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 128;
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = generators::random_connected_graph(n, 3.0 / n as f64, &mut rng);
    println!(
        "input: n = {}, m = {} (random connected graph)",
        g.n(),
        g.m()
    );

    // Paper-default configuration: ⌈log log log n⌉ + 3 Lotker phases, then
    // sketch-and-span.
    let run = gc::run(&g, &NetConfig::kt1(n).with_seed(7)).expect("simulation failed");
    println!("connected            : {}", run.output.connected);
    println!("components           : {}", run.output.component_count);
    println!(
        "forest edges         : {}",
        run.output.spanning_forest.len()
    );
    println!("total  | {}", run.cost);
    println!("phase1 | {}", run.phase1);
    println!("phase2 | {}", run.phase2);

    // Cross-check against the sequential reference.
    assert_eq!(run.output.connected, connectivity::is_connected(&g));
    assert_eq!(run.output.labels, connectivity::component_labels(&g));

    // The same run with Phase 1 disabled exercises the pure-sketch path —
    // this is the configuration whose Phase 2 becomes O(1) rounds under
    // the O(log^5 n)-bit bandwidth of the paper's "furthermore" remark.
    let sketch_only = GcConfig {
        phases: Some(0),
        families: None,
    };
    let wide = NetConfig::kt1(n)
        .with_seed(7)
        .with_link_words(NetConfig::polylog_bandwidth(n));
    let run2 = gc::run_with(&g, &wide, &sketch_only).expect("simulation failed");
    println!(
        "pure-sketch GC at log^5 n bandwidth: {} rounds (phase2 {})",
        run2.cost.rounds, run2.phase2.rounds
    );
    assert_eq!(run2.output.connected, run.output.connected);
}

//! Scenario: an auditable connectivity run. GC (the paper's Theorem 4
//! algorithm) runs under two tracer sinks: a streaming [`JsonlTracer`]
//! that writes one JSON event per line as the protocol executes, and a
//! [`RecordingTracer`] whose in-memory buffer feeds the per-phase and
//! per-node text tables, the derived metrics registry, and a Chrome
//! trace-event file you can load in Perfetto (ui.perfetto.dev).
//!
//! ```text
//! cargo run --release --example traced_run
//! cargo run --release --example traced_run -- /tmp/out-dir
//! ```
//!
//! Writes `trace.jsonl` and `trace.chrome.json` into the output directory
//! (default `target/traced_run`).

use congested_clique::core::gc::{self, GcConfig};
use congested_clique::graph::generators;
use congested_clique::net::NetConfig;
use congested_clique::route::Net;
use congested_clique::trace::{export, metrics_from_events, JsonlTracer, RecordingTracer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/traced_run".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let n = 64;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = generators::random_connected_graph(n, 0.1, &mut rng);

    // Run 1: stream events straight to disk as JSONL. The sink is
    // attached to the network, so every round, scope, and message batch
    // the simulator meters lands in the file in emission order.
    let jsonl_path = format!("{out_dir}/trace.jsonl");
    let sink = JsonlTracer::create(&jsonl_path).expect("create trace.jsonl");
    let mut net = Net::new(NetConfig::kt1(n).with_seed(9));
    net.set_tracer(Box::new(sink));
    let out = gc::run_on(&mut net, &g, &GcConfig::default()).expect("gc run");
    net.take_tracer(); // flushes the stream
    println!(
        "GC on connected G(n={n}, p=0.1): {} component(s), cost {:?}",
        out.component_count,
        net.cost()
    );
    println!("wrote {jsonl_path}");

    // Run 2: record in memory and derive reports. The model events are
    // deterministic per protocol + seed, so this run's stream matches
    // run 1's file line for line (modulo wall-clock timing events).
    let rec = RecordingTracer::new();
    let mut net = Net::new(NetConfig::kt1(n).with_seed(9));
    net.set_tracer(Box::new(rec.clone()));
    gc::run_on(&mut net, &g, &GcConfig::default()).expect("gc run");
    net.take_tracer();
    let events = rec.events();
    println!("recorded {} events\n", events.len());

    // Per-phase cost table: where the rounds/messages/words accrued.
    print!("{}", export::phase_table(&events));
    println!();

    // Derived metrics: counters plus log-scaled histograms of per-link
    // load, inbox sizes, and per-round message counts.
    let metrics = metrics_from_events(&events).snapshot();
    println!("derived metrics:");
    for (name, value) in &metrics.counters {
        println!("  {name:<24} {value}");
    }
    for (name, h) in &metrics.histograms {
        println!(
            "  {name:<24} count={} min={} max={} mean={:.1}",
            h.count,
            h.min,
            h.max,
            h.mean()
        );
    }
    println!();

    // Chrome trace-event JSON: open in Perfetto to see phases as nested
    // slices and per-round message flow on the timeline.
    let chrome_path = format!("{out_dir}/trace.chrome.json");
    std::fs::write(&chrome_path, export::to_chrome_trace(&events)).expect("write chrome trace");
    println!("wrote {chrome_path} (load at ui.perfetto.dev)");
}

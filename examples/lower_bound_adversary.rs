//! Scenario: play the Section 3 lower-bound adversary.
//!
//! Build the KT0 hard instance `G = G_U ∪ G_V`, extract its `Ω(m)`
//! edge-disjoint squares, and show the two sides of Theorem 9:
//!
//! * a *sub-quadratic* communication profile (here: a star) always leaves
//!   a square untouched, and swapping that square produces a *connected*
//!   graph the profile cannot distinguish from the disconnected `G`;
//! * the paper's own GC algorithm (Theorem 4) touches every square — its
//!   `Θ(n²)` messages are the price of correctness in KT0.
//!
//! Also audits the Section 4 KT1 family: a concrete `GC(u₀,v₀)` protocol
//! must cross every `{u_j, v_j}` partition across its runs on `G_{i,0}`
//! and `G_{i,i+1}` — the `Ω(n)` message bound in action.
//!
//! ```text
//! cargo run --release --example lower_bound_adversary
//! ```

use congested_clique::core::{gc, GcConfig};
use congested_clique::graph::connectivity;
use congested_clique::lb;
use congested_clique::net::NetConfig;
use congested_clique::route::Net;
use std::collections::HashSet;

fn main() {
    // ---- Section 3: the KT0 Ω(n²) adversary.
    let (n, m) = (24usize, 96usize);
    let inst = lb::hard_instance(n, m);
    lb::validate_instance(&inst).expect("construction invariants");
    let squares = lb::edge_disjoint_squares(&inst);
    println!("hard instance: n = {n}, m = {m}");
    println!(
        "edge-disjoint squares: {} (≥ m/6 = {:.1})",
        squares.len(),
        m as f64 / 6.0
    );

    // A cheap star profile: everyone only ever talks to node 0.
    let star: HashSet<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
    let square =
        lb::find_untouched_square(&squares, &star).expect("pigeonhole: fewer links than squares");
    let swapped = inst.apply_swap(&square.swap());
    println!(
        "star profile ({} links) leaves square {:?} untouched",
        star.len(),
        square.u_edge
    );
    println!(
        "  G is {}connected; the swap is {}connected — indistinguishable to the profile!",
        if connectivity::is_connected(&inst.graph) {
            ""
        } else {
            "dis"
        },
        if connectivity::is_connected(&swapped) {
            ""
        } else {
            "dis"
        },
    );
    assert!(!connectivity::is_connected(&inst.graph));
    assert!(connectivity::is_connected(&swapped));

    // The real algorithm's transcript touches every square.
    let cfg = NetConfig::kt1(n).with_seed(5).with_transcript();
    let mut net = Net::new(cfg);
    let out = gc::run_on(&mut net, &inst.graph, &GcConfig::default()).expect("simulation failed");
    assert!(!out.connected);
    let used = lb::links_used(net.transcript());
    println!(
        "Theorem 4 GC used {} distinct links ({} messages) — untouched square: {:?}",
        used.len(),
        net.cost().messages,
        lb::find_untouched_square(&squares, &used).map(|s| s.u_edge)
    );

    // ---- Section 4: the KT1 Ω(n) crossing audit.
    let i = 12;
    let r0 = lb::run_report_protocol(&lb::g_ij(i, 0), 1).expect("run");
    let r1 = lb::run_report_protocol(&lb::g_ij(i, i + 1), 1).expect("run");
    let crossed: HashSet<usize> = lb::crossed_partitions(i, &r0.transcript)
        .union(&lb::crossed_partitions(i, &r1.transcript))
        .copied()
        .collect();
    println!(
        "\nKT1 family (i = {i}, n = {}): GC(u0,v0) on G_i0 ({} msgs, answer {}) and G_i,i+1 ({} msgs, answer {})",
        2 * i + 2,
        r0.messages,
        r0.connected,
        r1.messages,
        r1.connected
    );
    println!(
        "partitions crossed across both runs: {}/{} (Theorem 10 requires all of them)",
        crossed.len(),
        i
    );
    assert_eq!(crossed.len(), i);
    assert!(r0.messages + r1.messages >= (i as u64) / 2);
    println!("Ω(n) crossing structure verified ✓");
}
